// ShadowVm — a Mach-style shadow-object memory manager (the paper's comparison
// baseline; section 4.2.5, refs [13] and [18]).
//
// Mechanism reproduced from the paper's description: "When Mach initializes a
// cache (which they call a memory object) as a copy of an other, the source is set
// read-only, and two new memory objects, the shadow objects, are created.  The
// shadows are to keep the pages modified by the source and copy objects
// respectively; the original pages remain in the source object.  If successive
// copies occur, a chain of shadows may build up."
//
// The two structural problems the paper identifies are observable here:
//   1. chains must be garbage-collected by merging shadows (shadow_collapses), and
//   2. the object a cache actually references changes dynamically as it is copied
//      (ShadowCacheState::top is re-pointed on every copy).
//
// ShadowVm implements the same GMI, so the Nucleus, the Unix layer and every
// benchmark run unmodified on it — which is what makes the Table 6/7 comparisons
// apples-to-apples.
#ifndef GVM_SRC_SHADOW_SHADOW_VM_H_
#define GVM_SRC_SHADOW_SHADOW_VM_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pvm/fragment_map.h"
#include "src/vmbase/base_mm.h"

namespace gvm {

class ShadowVm;
class ShadowCache;

// A page resident in a memory object.
struct ShadowPage {
  SegOffset offset = 0;
  FrameIndex frame = kInvalidFrame;
  bool dirty = false;
  // Reverse mappings, as in the PVM (needed for protection downgrades).
  struct Mapping {
    AsId as;
    Vaddr va;
    RegionImpl* region;
  };
  std::vector<Mapping> mappings;
};

// Where a memory object finds pages it does not hold: the next object down the
// shadow chain, with an offset translation.
struct ShadowLink {
  class MemObject* object = nullptr;
  SegOffset base = 0;

  ShadowLink Advanced(uint64_t delta) const { return ShadowLink{object, base + delta}; }
  bool operator==(const ShadowLink&) const = default;
};

// A Mach-style memory object: pages + backing chain.
class MemObject {
 public:
  MemObject(uint64_t id, std::string name) : id_(id), name_(std::move(name)) {}

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class ShadowVm;
  friend class ShadowCache;
  friend class ObjectIo;

  uint64_t id_;
  std::string name_;
  std::map<SegOffset, ShadowPage> pages_;
  FragmentMap<ShadowLink> backing_;
  SegmentDriver* driver_ = nullptr;  // root objects of permanent segments only
  bool temporary_ = true;
};

class ShadowCache final : public Cache {
 public:
  ShadowCache(ShadowVm& vm, CacheId id, std::string name, SegmentDriver* driver);
  ~ShadowCache() override;

  CacheId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  SegmentDriver* driver() const override;

  [[nodiscard]] Status CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size,
                CopyPolicy policy) override;
  [[nodiscard]] Status MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size) override;
  [[nodiscard]] Status Read(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status Write(SegOffset offset, const void* buffer, size_t size) override;
  [[nodiscard]] Status Destroy() override;

  [[nodiscard]] Status FillUp(SegOffset offset, const void* data, size_t size,
                Prot max_prot = Prot::kAll) override;
  [[nodiscard]] Status FillZero(SegOffset offset, size_t size) override;
  [[nodiscard]] Status CopyBack(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status MoveBack(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Sync() override;
  [[nodiscard]] Status Invalidate(SegOffset offset, size_t size) override;
  [[nodiscard]] Status SetProtection(SegOffset offset, size_t size, Prot max_prot) override;
  [[nodiscard]] Status LockInMemory(SegOffset offset, size_t size) override;
  [[nodiscard]] Status Unlock(SegOffset offset, size_t size) override;

  size_t ResidentPages() const override;
  size_t MappingCount() const override;

  // Length of the shadow chain below this cache (for the fork-chain benchmarks).
  size_t ChainDepth() const;

 private:
  friend class ShadowVm;

  ShadowVm& vm_;
  const CacheId id_;
  std::string name_;
  // "The actual reference of a particular cache changes dynamically as it is
  // copied" — the paper's problem 2 with this design.
  MemObject* top_ = nullptr;
  size_t mapping_count_ = 0;
};

class ShadowVm final : public BaseMm {
 public:
  struct Options {
    // Run the shadow-collapse garbage collector after destroys (Mach's behaviour;
    // disabling it shows unbounded chain growth in the ablation bench).
    bool collapse_shadows = true;
  };

  ShadowVm(PhysicalMemory& memory, Mmu& mmu) : ShadowVm(memory, mmu, Options{}) {}
  ShadowVm(PhysicalMemory& memory, Mmu& mmu, Options options);
  ~ShadowVm() override;

  Result<Cache*> CacheCreate(SegmentDriver* driver, std::string name) override;
  const char* name() const override { return "ShadowVm(Mach)"; }

  size_t CacheCount() const GVM_EXCLUDES(mu_);
  size_t ObjectCount() const GVM_EXCLUDES(mu_);

 protected:
  [[nodiscard]] Status ResolveFault(RegionImpl& region, const PageFault& fault, SegOffset page_offset,
                      MutexLock& lock) override GVM_REQUIRES(mu_);
  void OnRegionMapped(RegionImpl& region, MutexLock& lock) override GVM_REQUIRES(mu_);
  void OnRegionUnmapping(RegionImpl& region) override GVM_REQUIRES(mu_);
  void OnRegionSplit(RegionImpl& first, RegionImpl& second) override GVM_REQUIRES(mu_);
  void OnRegionProtection(RegionImpl& region) override GVM_REQUIRES(mu_);
  [[nodiscard]] Status OnRegionLock(RegionImpl& region, MutexLock& lock) override GVM_REQUIRES(mu_);
  [[nodiscard]] Status OnRegionUnlock(RegionImpl& region) override GVM_REQUIRES(mu_);

 private:
  friend class ShadowCache;
  friend class ObjectIo;

  MemObject* NewObject(std::string name) GVM_REQUIRES(mu_);

  // Find the current value of (object, offset) down the chain.  Returns the
  // owning object and page, or (root, nullptr) when absent everywhere.
  struct ChainHit {
    MemObject* object = nullptr;
    ShadowPage* page = nullptr;
    SegOffset offset = 0;
    size_t depth = 0;
  };
  ChainHit ChainLookup(MemObject& start, SegOffset offset) GVM_REQUIRES(mu_);

  // Materialize a page in `object` with the given bytes (nullptr = zero).
  Result<ShadowPage*> MakePage(MemObject& object, SegOffset offset, const std::byte* bytes,
                               bool dirty) GVM_REQUIRES(mu_);
  void DropPage(MemObject& object, ShadowPage& page) GVM_REQUIRES(mu_);

  // Get the value bytes for (object, offset), pulling from the root driver if
  // needed.  Lock held; may release it around the upcall.
  Result<const std::byte*> ResolveBytes(MutexLock& lock, MemObject& start,
                                        SegOffset offset, ShadowPage** owner_page,
                                        MemObject** owner) GVM_REQUIRES(mu_);

  [[nodiscard]] Status CopyRange(MutexLock& lock, ShadowCache& src, SegOffset src_off,
                   ShadowCache& dst, SegOffset dst_off, size_t size, CopyPolicy policy) GVM_REQUIRES(mu_);

  // Reference bookkeeping + the shadow-chain garbage collector.
  bool ObjectReferenced(const MemObject& object) const GVM_REQUIRES(mu_);
  void ReapUnreferenced(MemObject* object) GVM_REQUIRES(mu_);
  void CollapseChains() GVM_REQUIRES(mu_);

  void ProtectObjectRange(MemObject& object, SegOffset offset, size_t size) GVM_REQUIRES(mu_);

  [[nodiscard]] Status CacheAccess(MutexLock& lock, ShadowCache& cache, SegOffset offset,
                     void* buffer, size_t size, bool write) GVM_REQUIRES(mu_);

  Options options_;
  CacheId next_cache_id_ GVM_GUARDED_BY(mu_) = 1;
  uint64_t next_object_id_ GVM_GUARDED_BY(mu_) = 1;
  std::unordered_map<CacheId, std::unique_ptr<ShadowCache>> caches_ GVM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unique_ptr<MemObject>> objects_ GVM_GUARDED_BY(mu_);
  std::unordered_map<RegionImpl*, std::map<Vaddr, std::pair<MemObject*, SegOffset>>>
      region_maps_ GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_SHADOW_SHADOW_VM_H_
