// The Generic Memory management Interface entry point.
//
// A MemoryManager is the replaceable unit of the paper's design: everything above
// it (Nucleus, segment manager, Unix subsystem) is implementation-agnostic.  Three
// implementations live in this repository, matching section 5.2 of the paper:
//   * PagedVm   (src/pvm)     — demand paging with history objects (the paper's PVM)
//   * ShadowVm  (src/shadow)  — Mach-style shadow objects (the comparison baseline)
//   * MinimalVm (src/minimal) — eager allocation for embedded/real-time configs
#ifndef GVM_SRC_GMI_MEMORY_MANAGER_H_
#define GVM_SRC_GMI_MEMORY_MANAGER_H_

#include <string>

#include "src/gmi/cache.h"
#include "src/gmi/context.h"
#include "src/gmi/region.h"
#include "src/gmi/segment_driver.h"
#include "src/gmi/types.h"
#include "src/hal/cpu.h"
#include "src/util/result.h"

namespace gvm {

class MemoryManager : public FaultHandler {
 public:
  ~MemoryManager() override = default;

  // contextCreate() -> context
  virtual Result<Context*> ContextCreate() = 0;

  // cacheCreate(segment) -> cache: bind `driver` (the segment) to a new, empty
  // cache.  Pass nullptr for a temporary cache: it is zero-filled on demand and
  // acquires a swap segment through the SegmentRegistry on its first pushOut.
  virtual Result<Cache*> CacheCreate(SegmentDriver* driver, std::string name) = 0;

  // regionCreate(context, address, size, prot, cache, offset) -> region:
  // map `cache` (from `offset`) into `context` at [address, address + size).
  virtual Result<Region*> RegionCreate(Context& context, Vaddr address, uint64_t size, Prot prot,
                                       Cache& cache, SegOffset offset) = 0;

  // Registry receiving segmentCreate upcalls for MM-created caches (section 3.3.3).
  // May be null, in which case such caches cannot be paged out.
  virtual void BindSegmentRegistry(SegmentRegistry* registry) = 0;

  // The hardware this manager drives (simulation glue for tests and benchmarks).
  virtual Cpu& cpu() = 0;

  // A mapper this manager depends on crashed and was recovered (journal
  // replayed, port revived).  Managers override to fold the recovery into
  // their accounting and re-arm any degraded state; the default ignores it.
  virtual void NoteMapperRecovery(uint64_t records_replayed,
                                  uint64_t records_discarded) {
    (void)records_replayed;
    (void)records_discarded;
  }

  // Snapshot of the manager counters, taken under the manager lock (returned
  // by value: implementations are concurrent and a reference would race).
  virtual MmStats stats() const = 0;
  virtual void ResetStats() = 0;

  virtual const char* name() const = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_GMI_MEMORY_MANAGER_H_
