// GMI-level types shared by all memory-manager implementations and their clients.
#ifndef GVM_SRC_GMI_TYPES_H_
#define GVM_SRC_GMI_TYPES_H_

#include <cstdint>

#include "src/hal/types.h"

namespace gvm {

class Cache;

// Identifies a cache for global-map keys and debugging.
using CacheId = uint64_t;
inline constexpr CacheId kInvalidCacheId = ~CacheId{0};

// How a copy/move between caches should be performed.  The paper's MM picks the
// technique by size (section 4: history objects for large data, per-virtual-page
// for small data such as IPC messages); exposing the choice lets benchmarks and
// ablations pin a strategy.
enum class CopyPolicy : uint8_t {
  kAuto = 0,        // MM heuristic: per-page below a threshold, history above
  kEager,           // physical copy now (the baseline the paper improves upon)
  kHistory,         // deferred via history objects (section 4.2), copy-on-write
  kHistoryOnRef,    // deferred via history objects, copy-on-reference
  kPerPage,         // deferred per virtual page (section 4.3)
};

// Status record returned by region.status() / context.getRegionList() (Table 2).
struct RegionStatus {
  Vaddr address = 0;
  uint64_t size = 0;
  Prot protection = Prot::kNone;
  Cache* cache = nullptr;
  SegOffset offset = 0;  // region start offset within the segment
  bool locked = false;   // lockInMemory in effect
};

// Aggregate counters every MemoryManager implementation maintains; benchmarks use
// these to make the structural comparisons of section 5.3 exact.
struct MmStats {
  uint64_t page_faults = 0;          // faults dispatched to the MM
  uint64_t protection_faults = 0;    // of which write/protection violations
  uint64_t cow_copies = 0;           // page frames physically copied to resolve COW
  uint64_t zero_fills = 0;           // frames demand-filled with zeroes
  uint64_t pull_ins = 0;             // upcalls to segment drivers for data
  uint64_t push_outs = 0;            // upcalls to segment drivers to save data
  uint64_t pages_paged_out = 0;      // frames evicted by the page-out policy
  uint64_t history_objects = 0;      // working/history caches created (PVM)
  uint64_t shadow_objects = 0;       // shadow objects created (Mach baseline)
  uint64_t shadow_collapses = 0;     // shadow-chain GC merges (Mach baseline)
  uint64_t deferred_copy_pages = 0;  // pages whose copy was deferred
  uint64_t eager_copy_pages = 0;     // pages copied eagerly
};

}  // namespace gvm

#endif  // GVM_SRC_GMI_TYPES_H_
