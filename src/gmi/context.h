// GMI contexts — protected virtual address spaces (Table 2).
//
// A context is sparsely populated with non-overlapping regions separated by
// unallocated zones.
#ifndef GVM_SRC_GMI_CONTEXT_H_
#define GVM_SRC_GMI_CONTEXT_H_

#include <vector>

#include "src/gmi/types.h"
#include "src/util/result.h"

namespace gvm {

class Region;

class Context {
 public:
  virtual ~Context() = default;

  // context.getRegionList(): the regions of this context, sorted by start address.
  virtual std::vector<RegionStatus> GetRegionList() const = 0;

  // Find the region containing `va` (used by rgnMapFromActor / rgnInitFromActor
  // through the Nucleus, and by the fault handler internally).
  virtual Result<Region*> FindRegion(Vaddr va) = 0;

  // context.switch(): make this the current user context.
  virtual void Switch() = 0;

  // context.destroy(): destroy the address space and all its regions.
  [[nodiscard]] virtual Status Destroy() = 0;

  // The hardware address space backing this context (simulation glue: the Cpu
  // addresses spaces by AsId).
  virtual AsId address_space() const = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_GMI_CONTEXT_H_
