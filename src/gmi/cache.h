// The GMI local cache — Tables 1 and 4 of the paper.
//
// A cache manages the real memory currently in use for one segment.  It is the
// single, unified cache of section 3.2: mapped access (through regions) and
// explicit copy access go through the same object, so the dual-caching problem of
// Unix (file buffers vs page buffers) cannot arise.
//
// Caches are implemented *below* the GMI by the memory manager; this is the
// abstract interface the rest of the kernel sees.
#ifndef GVM_SRC_GMI_CACHE_H_
#define GVM_SRC_GMI_CACHE_H_

#include <cstddef>
#include <string>

#include "src/gmi/types.h"
#include "src/util/status.h"

namespace gvm {

class SegmentDriver;

class Cache {
 public:
  virtual ~Cache() = default;

  // ---- Identity ----

  virtual CacheId id() const = 0;
  // Debug label ("src", "cpy1", "w1" in the paper's figures).
  virtual const std::string& name() const = 0;
  // The segment driver bound at creation, or nullptr for an unbound temporary
  // cache (it gets one lazily via SegmentRegistry::SegmentCreate on first pushOut).
  virtual SegmentDriver* driver() const = 0;

  // ---- Table 1: segment access (may cause faults; they block the caller) ----

  // cache.copy: copy `size` bytes at `src_offset` of this cache into `dst` at
  // `dst_offset`.  With a deferred policy this only sets up bookkeeping (history
  // objects or per-page stubs); the data moves on later faults.
  [[nodiscard]] virtual Status CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size,
                        CopyPolicy policy) = 0;

  // cache.move: like copy, but the source contents become undefined, allowing the
  // MM to retarget real pages instead of copying when alignment permits.
  [[nodiscard]] virtual Status MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size) = 0;

  // Explicit data transfer between a kernel buffer and the cache (the read/write
  // half of the unified-cache interface).  Faults (pullIns) happen as needed.
  [[nodiscard]] virtual Status Read(SegOffset offset, void* buffer, size_t size) = 0;
  [[nodiscard]] virtual Status Write(SegOffset offset, const void* buffer, size_t size) = 0;

  // cache.destroy: discard the cache.  Fails with kBusy while regions still map it.
  [[nodiscard]] virtual Status Destroy() = 0;

  // ---- Table 4: cache management (downcalls available to segment managers) ----

  // fillUp: provide the data answering a pullIn (or pre-load data proactively).
  // `max_prot` caps the access the cached data carries ("cached data carries the
  // access rights defined by the accessMode argument to pullIn"); a later write
  // fault beyond the cap triggers the getWriteAccess upcall.
  [[nodiscard]] virtual Status FillUp(SegOffset offset, const void* data, size_t size,
                        Prot max_prot = Prot::kAll) = 0;
  // Zero-fill variant, for segments with no backing bytes yet.
  [[nodiscard]] virtual Status FillZero(SegOffset offset, size_t size) = 0;

  // copyBack / moveBack: retrieve cached data during a pushOut.  moveBack also
  // removes the pages from the cache (used at cache destruction/flush time).
  [[nodiscard]] virtual Status CopyBack(SegOffset offset, void* buffer, size_t size) = 0;
  [[nodiscard]] virtual Status MoveBack(SegOffset offset, void* buffer, size_t size) = 0;

  // flush: push out all modified data and discard every cached page.
  [[nodiscard]] virtual Status Flush() = 0;
  // sync: push out all modified data, keeping the pages cached.
  [[nodiscard]] virtual Status Sync() = 0;
  // invalidate: discard cached data in the range without saving it.
  [[nodiscard]] virtual Status Invalidate(SegOffset offset, size_t size) = 0;

  // Cap the effective protection of cached data in the range (a distributed-memory
  // server uses this to revoke write or all access; see section 3.3.3).
  [[nodiscard]] virtual Status SetProtection(SegOffset offset, size_t size, Prot max_prot) = 0;

  // Pin / unpin cached data in real memory (may cause pullIns).
  [[nodiscard]] virtual Status LockInMemory(SegOffset offset, size_t size) = 0;
  [[nodiscard]] virtual Status Unlock(SegOffset offset, size_t size) = 0;

  // ---- Introspection (for tests, figures and benchmarks) ----

  // Number of page frames this cache currently owns.
  virtual size_t ResidentPages() const = 0;
  // Number of regions currently mapping this cache.
  virtual size_t MappingCount() const = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_GMI_CACHE_H_
