// GMI regions — the mapped-data-access half of Table 2.
//
// A region is a contiguous portion of a context's virtual address space, mapped to
// a segment through a local cache.  A protection applies to the entire region; to
// protect parts differently, split the region first (splitting never occurs
// spontaneously, so the upper layers can track regions reliably).
#ifndef GVM_SRC_GMI_REGION_H_
#define GVM_SRC_GMI_REGION_H_

#include "src/gmi/types.h"
#include "src/util/result.h"

namespace gvm {

class Region {
 public:
  virtual ~Region() = default;

  // region1.split(offset) -> region2: cut this region in two at `offset` bytes from
  // its start.  This region keeps [0, offset); the returned region covers the rest.
  virtual Result<Region*> Split(uint64_t offset) = 0;

  // Change the hardware protection of the whole region.
  [[nodiscard]] virtual Status SetProtection(Prot prot) = 0;

  // Pin the region's data in real memory; afterwards accesses never fault and the
  // underlying MMU maps remain fixed (important for real-time kernels).
  [[nodiscard]] virtual Status LockInMemory() = 0;
  [[nodiscard]] virtual Status Unlock() = 0;

  // region.status(): address, size, protection, cache, offset, lock state.
  virtual RegionStatus GetStatus() const = 0;

  // region.destroy(): unmap the corresponding cache from the context.
  [[nodiscard]] virtual Status Destroy() = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_GMI_REGION_H_
