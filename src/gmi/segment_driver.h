// The GMI upcall interface to segment managers (paper Table 3).
//
// Segments are managed *above* the GMI by external servers (segment managers /
// mappers).  The memory manager performs these upcalls to move data between a
// local cache and its segment; the segment side answers by invoking the cache
// management downcalls of Table 4 (Cache::FillUp / CopyBack / MoveBack).
#ifndef GVM_SRC_GMI_SEGMENT_DRIVER_H_
#define GVM_SRC_GMI_SEGMENT_DRIVER_H_

#include <cstddef>

#include "src/gmi/types.h"
#include "src/util/status.h"

namespace gvm {

class Cache;

class SegmentDriver {
 public:
  virtual ~SegmentDriver() = default;

  // segment.pullIn(offset, size, accessMode): read data in from the segment.
  // The driver supplies the bytes by calling cache.FillUp (or FillZero) for the
  // requested range before returning, or later from another thread — the MM keeps
  // a synchronization page stub in place until the fill arrives.
  [[nodiscard]] virtual Status PullIn(Cache& cache, SegOffset offset, size_t size, Access access_mode) = 0;

  // segment.getWriteAccess(offset, size): the cached data was pulled in read-only
  // and a write access occurred.  kOk grants write access (the MM then raises the
  // cached protection); anything else denies it.  Distributed-coherence mappers use
  // this hook to invalidate remote copies first.
  [[nodiscard]] virtual Status GetWriteAccess(Cache& cache, SegOffset offset, size_t size) = 0;

  // segment.pushOut(offset, size): save cached data to the segment.  The driver
  // fetches the bytes with cache.CopyBack or cache.MoveBack.
  [[nodiscard]] virtual Status PushOut(Cache& cache, SegOffset offset, size_t size) = 0;
};

// segmentCreate(cache) -> segment (Table 3, last row): the MM sometimes creates
// caches unilaterally (history objects, working objects).  With this upcall it
// declares such a cache to the upper layer so the cache can be swapped out; the
// upper layer returns the driver for the newly assigned (temporary) segment.
class SegmentRegistry {
 public:
  virtual ~SegmentRegistry() = default;
  virtual SegmentDriver* SegmentCreate(Cache& cache) = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_GMI_SEGMENT_DRIVER_H_
