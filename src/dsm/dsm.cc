#include "src/dsm/dsm.h"

#include <cassert>
#include <cstring>

#include "src/nucleus/journal_record.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

namespace {

// Directory WAL record types (the type byte is a per-journal namespace; these
// never meet the swap mapper's).
constexpr uint8_t kWalState = 1;          // offset = page; payload = owner, sharers
constexpr uint8_t kWalData = 2;           // offset = byte offset; payload = bytes
constexpr uint8_t kWalSiteDeath = 3;      // key = site id
constexpr uint8_t kWalSiteRecovered = 4;  // key = site id; payload = drained count

constexpr uint64_t kNoOwnerWire = ~0ull;

// LatchRange waits this many 100ms rounds for a conflicting transition before
// aborting with kBusy (see the deadlock-avoidance note at LatchRange).
constexpr int kLatchDeadlineRounds = 20;

}  // namespace

// The per-site mapper for shared segments: forwards reads/writes to the home
// directory and implements the getWriteAccess hook with the invalidation
// protocol.  Every operation is one SimNet call; transport failures (loss past
// the retransmit budget, partitions, a dead home) surface as kTimeout /
// kPortDead to the faulting site, which aborts that access without touching
// authoritative state.
class CoherentMapper final : public Mapper {
 public:
  CoherentMapper(DsmCluster& cluster, DsmSite& site) : cluster_(cluster), site_(site) {}

  Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override {
    NetMessage m;
    m.op = NetOp::kReadReq;
    m.key = key;
    m.offset = offset;
    m.size = size;
    Result<NetMessage> reply = cluster_.net().Call(site_.id(), kHomeNode, std::move(m));
    if (!reply.ok()) {
      return reply.status();
    }
    if (reply->status != Status::kOk) {
      return reply->status;
    }
    *out = std::move(reply->payload);
    return Status::kOk;
  }

  Status Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) override {
    NetMessage m;
    m.op = NetOp::kWriteBack;
    m.key = key;
    m.offset = offset;
    m.size = size;
    m.payload.assign(data, data + size);
    Result<NetMessage> reply = cluster_.net().Call(site_.id(), kHomeNode, std::move(m));
    if (!reply.ok()) {
      return reply.status();
    }
    if (reply->status == Status::kPermissionDenied) {
      // The home refused the bytes because this site is no longer the owner:
      // by definition our copy is stale (a transition raced the push) and the
      // authoritative bytes live at home.  Dropping the write here lets the
      // push-out retire the page cleanly instead of requeueing a writeback the
      // directory will refuse forever.
      return Status::kOk;
    }
    return reply->status;
  }

  Status GetWriteAccess(uint64_t key, SegOffset offset, size_t size) override {
    NetMessage m;
    m.op = NetOp::kAcquireWrite;
    m.key = key;
    m.offset = offset;
    m.size = size;
    Result<NetMessage> reply = cluster_.net().Call(site_.id(), kHomeNode, std::move(m));
    if (!reply.ok()) {
      return reply.status();
    }
    return reply->status;
  }

  Prot FillProtection(uint64_t key, SegOffset offset, size_t size) override {
    (void)size;
    NetMessage m;
    m.op = NetOp::kFillProtQuery;
    m.key = key;
    m.offset = offset;
    Result<NetMessage> reply = cluster_.net().Call(site_.id(), kHomeNode, std::move(m));
    if (!reply.ok() || reply->status != Status::kOk) {
      // Unreachable home: fill read-only, so the first write re-faults and
      // retries the protocol rather than writing an unowned page.
      return Prot::kReadExecute;
    }
    return static_cast<Prot>(reply->arg);
  }

  // Directory operations recall other sites, whose push-outs re-enter their
  // own servers: serve locks held across that nesting would form a lock-order
  // cycle with the segment managers, so coherent dispatch stays lock-free.
  bool thread_safe_dispatch() const override { return true; }

 private:
  DsmCluster& cluster_;
  DsmSite& site_;
};

// ---------------------------------------------------------------------------
// DsmSite
// ---------------------------------------------------------------------------

DsmSite::DsmSite(DsmCluster& cluster, SiteId id, size_t frames, size_t page_size)
    : cluster_(cluster), id_(id) {
  memory_ = std::make_unique<PhysicalMemory>(frames, page_size);
  mmu_ = std::make_unique<SoftMmu>(page_size);
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  vm_ = std::make_unique<PagedVm>(*memory_, *mmu_, options);
  nucleus_ = std::make_unique<Nucleus>(*vm_);
  swap_ = std::make_unique<SwapMapper>(page_size);
  swap_server_ = std::make_unique<MapperServer>(nucleus_->ipc(), *swap_);
  nucleus_->BindDefaultMapper(swap_server_.get());
  coherent_ = std::make_unique<CoherentMapper>(cluster, *this);
  coherent_server_ = std::make_unique<MapperServer>(nucleus_->ipc(), *coherent_);
  nucleus_->RegisterMapper(coherent_server_.get());
  actor_ = *nucleus_->ActorCreate("site" + std::to_string(id));
}

DsmSite::~DsmSite() = default;

Result<Region*> DsmSite::MapShared(const std::string& segment_name, Vaddr va, uint64_t size,
                                   Prot prot) {
  Result<uint64_t> key = cluster_.LookupSegment(segment_name);
  if (!key.ok()) {
    return key.status();
  }
  Capability capability{coherent_server_->port(), *key};
  Result<Region*> region = actor_->RgnMap(va, size, prot, capability, 0);
  if (region.ok()) {
    Result<Region*> r = region;
    RegionStatus status = (*r)->GetStatus();
    shared_caches_[*key] = status.cache;
  }
  return region;
}

Status DsmSite::SyncShared() {
  Status result = Status::kOk;
  for (auto& [key, cache] : shared_caches_) {
    Status s = cache->Sync();
    if (s != Status::kOk && result == Status::kOk) {
      result = s;
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// DsmCluster: directory and protocol
// ---------------------------------------------------------------------------

DsmCluster::DsmCluster(size_t page_size) : page_size_(page_size), net_(0x5eed) {
  net_.Register(kHomeNode, [this](const NetMessage& request, NetMessage* reply) {
    HandleHomeMessage(request, reply);
  });
}

DsmCluster::~DsmCluster() {
  // Sites die before the directory and the net: a teardown-time cache flush
  // must still find the home side alive.
  sites_.clear();
}

DsmSite* DsmCluster::AddSite(size_t frames) {
  SiteId id = static_cast<SiteId>(sites_.size());
  assert(id < 64 && "sharer bitmaps hold 64 sites");
  sites_.push_back(std::make_unique<DsmSite>(*this, id, frames, page_size_));
  DsmSite* site = sites_.back().get();
  net_.Register(id, [this, site](const NetMessage& request, NetMessage* reply) {
    HandleSiteMessage(site, request, reply);
  });
  return site;
}

void DsmCluster::BindFaultInjector(FaultInjector* injector) {
  injector_.store(injector, std::memory_order_release);
  net_.BindFaultInjector(injector);
}

Status DsmCluster::CreateSharedSegment(const std::string& name, uint64_t size) {
  MutexLock lock(dir_mu_);
  if (names_.contains(name)) {
    return Status::kAlreadyExists;
  }
  uint64_t key = next_key_++;
  names_[name] = key;
  Segment& segment = segments_[key];
  segment.key = key;
  segment.size = AlignUp(size, page_size_);
  return Status::kOk;
}

DsmCluster::Segment* DsmCluster::FindSegment(uint64_t key) {
  auto it = segments_.find(key);
  return it == segments_.end() ? nullptr : &it->second;
}

Result<uint64_t> DsmCluster::LookupSegment(const std::string& name) {
  MutexLock lock(dir_mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Net handlers
// ---------------------------------------------------------------------------

void DsmCluster::HandleHomeMessage(const NetMessage& request, NetMessage* reply) {
  switch (request.op) {
    case NetOp::kReadReq:
      reply->status = DirectoryRead(request.src, request.key, request.offset,
                                    request.size, &reply->payload);
      return;
    case NetOp::kWriteBack:
      reply->status = DirectoryWriteBack(request.src, request.key, request.offset,
                                         request.payload.data(), request.payload.size());
      return;
    case NetOp::kAcquireWrite:
      reply->status = DirectoryAcquireWrite(request.src, request.key, request.offset,
                                            request.size);
      return;
    case NetOp::kFillProtQuery:
      reply->arg = static_cast<uint64_t>(
          DirectoryFillProt(request.src, request.key, request.offset));
      reply->status = Status::kOk;
      return;
    case NetOp::kSiteRecovered: {
      const SiteId site = static_cast<SiteId>(request.key);
      // Refuse while a crash of this very site is mid-teardown: clearing the
      // death mark now would race the crash writing it (see CrashSite).  The
      // check is safe against the announcement itself being stale — a dead
      // requester's retransmit hits the dedup cache, never this handler.
      if ((crashing_sites_.load(std::memory_order_acquire) & SiteBit(site)) != 0 ||
          net_.NodeDead(site)) {
        reply->status = Status::kBusy;
        return;
      }
      reply->arg = DirectorySiteRecovered(site);
      reply->status = Status::kOk;
      return;
    }
    default:
      reply->status = Status::kInvalidArgument;
      return;
  }
}

void DsmCluster::HandleSiteMessage(DsmSite* site, const NetMessage& request,
                                   NetMessage* reply) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  switch (request.op) {
    case NetOp::kRecall: {
      // The owner dying right here loses its uncommitted stores: they were
      // never acknowledged home, so the home's last committed bytes stay
      // authoritative and nothing is corrupted.
      if (injector != nullptr &&
          injector->Check(FaultSite::kCrashSiteMidRecall) != Status::kOk) {
        (void)CrashSite(site->id());
        reply->status = Status::kPortDead;
        return;
      }
      auto it = site->shared_caches_.find(request.key);
      if (it == site->shared_caches_.end()) {
        reply->status = Status::kOk;  // nothing cached here
        return;
      }
      Status s = it->second->Sync();  // dirty pages travel home (kWriteBack)
      if (s == Status::kOk) {
        s = it->second->SetProtection(request.offset, request.size, Prot::kReadExecute);
      }
      // Dying *after* the writeback committed but before the ack: the data
      // survives at home; the lost ack makes the home treat us as demoted.
      if (injector != nullptr &&
          injector->Check(FaultSite::kCrashSiteBeforeAck) != Status::kOk) {
        (void)CrashSite(site->id());
        reply->status = Status::kPortDead;
        return;
      }
      reply->status = s;
      return;
    }
    case NetOp::kInvalidate: {
      auto it = site->shared_caches_.find(request.key);
      if (it == site->shared_caches_.end()) {
        reply->status = Status::kOk;
        return;
      }
      reply->status = it->second->Invalidate(request.offset, request.size);
      return;
    }
    default:
      reply->status = Status::kInvalidArgument;
      return;
  }
}

// ---------------------------------------------------------------------------
// Range transitions
// ---------------------------------------------------------------------------

Status DsmCluster::LatchRange(Segment* segment, SegOffset offset, size_t size,
                              SegOffset* first, SegOffset* end) {
  *first = AlignDown(offset, page_size_);
  *end = AlignUp(offset + size, page_size_);
  // All-or-nothing: wait until no page of the range is mid-transition, then
  // claim every page.  The wait carries a deadline because a cycle through the
  // sites is possible: the latch holder may be invalidating a page another
  // thread holds in transit, while that thread's fill waits right here for our
  // latch.  Timing out aborts *this* transition (kBusy), which fails the fill,
  // clears its transit stub and unblocks the holder — the cluster-level
  // equivalent of deadlock-avoidance by victim abort.
  for (int round = 0;; ++round) {
    bool all_free = true;
    for (SegOffset at = *first; at < *end; at += page_size_) {
      auto it = segment->pages.find(at);
      if (it != segment->pages.end() && it->second.busy) {
        all_free = false;
        break;
      }
    }
    if (all_free) {
      break;
    }
    if (round >= kLatchDeadlineRounds) {
      return Status::kBusy;
    }
    dir_cv_.WaitFor(dir_mu_, 100'000);
  }
  for (SegOffset at = *first; at < *end; at += page_size_) {
    segment->pages[at].busy = true;
  }
  return Status::kOk;
}

void DsmCluster::UnlatchRange(Segment* segment, SegOffset first, SegOffset end) {
  for (SegOffset at = first; at < end; at += page_size_) {
    PageDir& dir = segment->pages[at];
    dir.busy = false;
    // A site death that raced this transition skipped its latched pages; the
    // latch holder finishes the scrub so no dead site lingers in the directory.
    bool changed = false;
    if (dir.owner != -1 && (dead_sites_ & SiteBit(dir.owner)) != 0) {
      dir.owner = -1;
      changed = true;
    }
    uint64_t live = dir.sharers & ~dead_sites_;
    if (live != dir.sharers) {
      dir.sharers = live;
      changed = true;
    }
    if (changed) {
      WalAppendState(segment->key, at, dir);
    }
  }
  dir_cv_.NotifyAll();
}

std::vector<DsmCluster::RangeOp> DsmCluster::PlanEvictions(Segment* segment,
                                                           SegOffset first, SegOffset end,
                                                           SiteId except,
                                                           bool want_exclusive) {
  std::vector<RangeOp> ops;
  // Recalls: one message per (owner, contiguous page run).
  RangeOp run;
  auto flush_run = [&] {
    if (run.target != -1) {
      ops.push_back(run);
    }
    run.target = -1;
  };
  for (SegOffset at = first; at < end; at += page_size_) {
    const PageDir& dir = segment->pages[at];
    SiteId owner = dir.owner;
    if (owner == except || (owner != -1 && (dead_sites_ & SiteBit(owner)) != 0)) {
      owner = -1;  // nothing to recall (it is the requester, or it is dead)
    }
    if (owner == run.target && run.target != -1 && at == run.offset + run.size) {
      run.size += page_size_;
      continue;
    }
    flush_run();
    if (owner != -1) {
      run = RangeOp{owner, at, page_size_, /*recall=*/true};
    }
  }
  flush_run();
  if (!want_exclusive) {
    return ops;
  }
  // Exclusive grants also invalidate every remaining copy: one message per
  // (site, contiguous page run) over owner-or-sharer pages.
  for (SiteId target = 0; target < static_cast<SiteId>(sites_.size()); ++target) {
    if (target == except || (dead_sites_ & SiteBit(target)) != 0) {
      continue;
    }
    run.target = -1;
    for (SegOffset at = first; at < end; at += page_size_) {
      const PageDir& dir = segment->pages[at];
      bool has_copy = dir.owner == target || (dir.sharers & SiteBit(target)) != 0;
      if (has_copy && run.target != -1 && at == run.offset + run.size) {
        run.size += page_size_;
        continue;
      }
      flush_run();
      if (has_copy) {
        run = RangeOp{target, at, page_size_, /*recall=*/false};
      }
    }
    flush_run();
  }
  return ops;
}

Status DsmCluster::SendRangeOp(uint64_t key, const RangeOp& op) {
  NetMessage m;
  m.op = op.recall ? NetOp::kRecall : NetOp::kInvalidate;
  m.key = key;
  m.offset = op.offset;
  m.size = op.size;
  const uint64_t pages = op.size / page_size_;
  if (op.recall) {
    recall_messages_.fetch_add(1, std::memory_order_relaxed);
    recalls_.fetch_add(pages, std::memory_order_relaxed);
  } else {
    invalidate_messages_.fetch_add(1, std::memory_order_relaxed);
    invalidations_.fetch_add(pages, std::memory_order_relaxed);
  }
  Result<NetMessage> reply = net_.Call(kHomeNode, op.target, std::move(m));
  if (!reply.ok()) {
    return reply.status();
  }
  return reply->status;
}

Status DsmCluster::DirectoryRead(SiteId reader, uint64_t key, SegOffset offset, size_t size,
                                 std::vector<std::byte>* out) {
  SegOffset first = 0;
  SegOffset end = 0;
  std::vector<RangeOp> ops;
  {
    MutexLock lock(dir_mu_);
    Segment* segment = FindSegment(key);
    if (segment == nullptr) {
      return Status::kNotFound;
    }
    Status latched = LatchRange(segment, offset, size, &first, &end);
    if (latched != Status::kOk) {
      transitions_aborted_.fetch_add(1, std::memory_order_relaxed);
      return latched;
    }
    ops = PlanEvictions(segment, first, end, reader, /*want_exclusive=*/false);
  }

  // Recall current owners home (their dirty bytes arrive as nested
  // writebacks).  dir_mu_ is NOT held here: the latch owns the range.
  Status failure = Status::kOk;
  for (const RangeOp& op : ops) {
    Status s = SendRangeOp(key, op);
    if (s == Status::kPortDead) {
      continue;  // the owner died: its committed bytes are already home
    }
    if (s != Status::kOk) {
      failure = s;  // partition / loss budget: abort the transition cleanly
      break;
    }
  }

  MutexLock lock(dir_mu_);
  Segment* segment = FindSegment(key);
  if (failure != Status::kOk) {
    transitions_aborted_.fetch_add(1, std::memory_order_relaxed);
    UnlatchRange(segment, first, end);
    return failure;
  }
  for (SegOffset at = first; at < end; at += page_size_) {
    PageDir& dir = segment->pages[at];
    PageDir before = dir;
    if (dir.owner != -1 && dir.owner != reader) {
      // Demoted by the recall above: the old owner keeps a read-only copy.
      if ((dead_sites_ & SiteBit(dir.owner)) == 0) {
        dir.sharers |= SiteBit(dir.owner);
      }
      dir.owner = -1;
    }
    if (dir.owner != reader && (dead_sites_ & SiteBit(reader)) == 0) {
      dir.sharers |= SiteBit(reader);
    }
    if (before.owner != dir.owner || before.sharers != dir.sharers) {
      WalAppendState(key, at, dir);
    }
    read_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  // Serve the authoritative bytes.
  out->assign(size, std::byte{0});
  for (size_t done = 0; done < size; done += page_size_) {
    auto data = segment->data.find(AlignDown(offset + done, page_size_));
    if (data != segment->data.end()) {
      std::memcpy(out->data() + done, data->second.data(),
                  std::min(page_size_, size - done));
    }
  }
  UnlatchRange(segment, first, end);
  return Status::kOk;
}

Status DsmCluster::DirectoryWriteBack(SiteId writer, uint64_t key, SegOffset offset,
                                      const std::byte* data, size_t size) {
  MutexLock lock(dir_mu_);
  Segment* segment = FindSegment(key);
  if (segment == nullptr) {
    return Status::kNotFound;
  }
  // Only the current owner of every touched page may commit bytes: a late
  // writeback from a demoted or dead site is refused, so a crash mid-recall
  // can never corrupt the authoritative data.
  for (SegOffset at = AlignDown(offset, page_size_); at < offset + size; at += page_size_) {
    auto it = segment->pages.find(at);
    if (it == segment->pages.end() || it->second.owner != writer) {
      writebacks_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::kPermissionDenied;
    }
  }
  for (size_t done = 0; done < size; done += page_size_) {
    SegOffset page = AlignDown(offset + done, page_size_);
    size_t chunk = std::min(page_size_, size - done);
    auto& bytes = segment->data[page];
    if (bytes.empty()) {
      bytes.assign(page_size_, std::byte{0});
    }
    std::memcpy(bytes.data() + (offset + done - page), data + done, chunk);
    WalAppendData(key, offset + done, data + done, chunk);
  }
  return Status::kOk;
}

Status DsmCluster::DirectoryAcquireWrite(SiteId writer, uint64_t key, SegOffset offset,
                                         size_t size) {
  SegOffset first = 0;
  SegOffset end = 0;
  std::vector<RangeOp> ops;
  {
    MutexLock lock(dir_mu_);
    Segment* segment = FindSegment(key);
    if (segment == nullptr) {
      return Status::kNotFound;
    }
    Status latched = LatchRange(segment, offset, size, &first, &end);
    if (latched != Status::kOk) {
      transitions_aborted_.fetch_add(1, std::memory_order_relaxed);
      return latched;
    }
    ops = PlanEvictions(segment, first, end, writer, /*want_exclusive=*/true);
  }

  Status failure = Status::kOk;
  for (const RangeOp& op : ops) {
    Status s = SendRangeOp(key, op);
    if (s == Status::kPortDead) {
      continue;  // a dead site holds no copies worth invalidating
    }
    if (s != Status::kOk) {
      // Exclusivity needs every invalidation acknowledged; a partitioned or
      // lossy link aborts the grant rather than risking two writers.
      failure = s;
      break;
    }
  }

  MutexLock lock(dir_mu_);
  Segment* segment = FindSegment(key);
  if (failure != Status::kOk) {
    transitions_aborted_.fetch_add(1, std::memory_order_relaxed);
    UnlatchRange(segment, first, end);
    return failure;
  }
  const bool writer_dead = (dead_sites_ & SiteBit(writer)) != 0;
  if (writer_dead) {
    // The requester died while its grant was in flight: park it for the
    // SiteRecovered drain instead of recording a dead owner.
    pending_grants_[writer].push_back(PendingGrant{key, first, end - first});
    pending_grants_recorded_.fetch_add(1, std::memory_order_relaxed);
  }
  for (SegOffset at = first; at < end; at += page_size_) {
    PageDir& dir = segment->pages[at];
    PageDir before = dir;
    dir.owner = writer_dead ? -1 : writer;
    dir.sharers = 0;
    if (before.owner != dir.owner || before.sharers != dir.sharers) {
      WalAppendState(key, at, dir);
    }
    if (!writer_dead) {
      write_grants_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  UnlatchRange(segment, first, end);
  return writer_dead ? Status::kPortDead : Status::kOk;
}

Prot DsmCluster::DirectoryFillProt(SiteId reader, uint64_t key, SegOffset offset) {
  MutexLock lock(dir_mu_);
  Segment* segment = FindSegment(key);
  if (segment == nullptr) {
    return Prot::kAll;
  }
  auto it = segment->pages.find(AlignDown(offset, page_size_));
  // Owners get writable fills; readers get read-only copies so their first
  // write raises the getWriteAccess upcall.
  if (it != segment->pages.end() && it->second.owner == reader) {
    return Prot::kAll;
  }
  return Prot::kReadExecute;
}

// ---------------------------------------------------------------------------
// Cross-site crash recovery
// ---------------------------------------------------------------------------

Status DsmCluster::CrashSite(SiteId site) {
  if (site < 0 || site >= static_cast<SiteId>(sites_.size())) {
    return Status::kNotFound;
  }
  // Claim the lifecycle bit for the entire teardown.  The port death below and
  // the directory's death mark at the bottom are separated by the cache wipe —
  // plenty of time for a concurrent RecoverSite to sneak a kSiteRecovered
  // through and clear a death mark that has not been written yet, stranding
  // the site as directory-dead on a live network.  While the bit is up the
  // home refuses re-join announcements; a second crasher backs off.
  const uint64_t bit = SiteBit(site);
  if ((crashing_sites_.fetch_or(bit, std::memory_order_acq_rel) & bit) != 0) {
    return Status::kAlreadyExists;
  }
  if (net_.NodeDead(site)) {
    crashing_sites_.fetch_and(~bit, std::memory_order_release);
    return Status::kAlreadyExists;
  }
  // Off the net first: in-flight calls to or from the site fail fast with
  // kPortDead from this point on.
  net_.SetNodeDead(site, true);

  // The machine's memory is gone: discard every cached page (invalidate, not
  // flush — uncommitted dirty bytes die with the site, exactly like RAM).
  DsmSite* s = sites_[site].get();
  std::vector<std::pair<Cache*, uint64_t>> wipes;
  {
    MutexLock lock(dir_mu_);
    for (auto& [key, cache] : s->shared_caches_) {
      Segment* segment = FindSegment(key);
      wipes.emplace_back(cache, segment != nullptr ? segment->size : 0);
    }
  }
  for (auto& [cache, size] : wipes) {
    (void)cache->Invalidate(0, size);
  }

  {
    MutexLock lock(dir_mu_);
    dead_sites_ |= SiteBit(site);
    for (auto& [key, segment] : segments_) {
      for (auto& [page, dir] : segment.pages) {
        if (dir.busy) {
          continue;  // the latch-holding transition scrubs at unlatch time
        }
        PageDir before = dir;
        if (dir.owner == site) {
          dir.owner = -1;  // home's last committed bytes stay authoritative
        }
        dir.sharers &= ~SiteBit(site);
        if (before.owner != dir.owner || before.sharers != dir.sharers) {
          WalAppendState(key, page, dir);
        }
      }
    }
  }
  WalAppendEvent(kWalSiteDeath, static_cast<uint64_t>(site), 0);
  site_crashes_.fetch_add(1, std::memory_order_relaxed);
  crashing_sites_.fetch_and(~bit, std::memory_order_release);
  return Status::kOk;
}

Result<uint64_t> DsmCluster::RecoverSite(SiteId site) {
  if (site < 0 || site >= static_cast<SiteId>(sites_.size())) {
    return Status::kNotFound;
  }
  if (!net_.NodeDead(site)) {
    return Status::kAlreadyExists;  // not crashed
  }
  if ((crashing_sites_.load(std::memory_order_acquire) & SiteBit(site)) != 0) {
    // CrashSite is still tearing the machine down; bringing the port back up
    // mid-wipe would let recalls reach a half-dead cache.  Retry later.
    return Status::kBusy;
  }
  net_.SetNodeDead(site, false);
  // Announce the re-join over the protocol itself; the home drains the grants
  // parked by our death exactly once (a lost ack retransmits under the same
  // sequence number and hits the dedup cache, not a second drain).
  NetMessage m;
  m.op = NetOp::kSiteRecovered;
  m.key = static_cast<uint64_t>(site);
  Result<NetMessage> reply = net_.Call(site, kHomeNode, std::move(m));
  if (!reply.ok()) {
    // The re-join announcement never got through (partition): the site stays
    // down, and a later RecoverSite retry re-announces safely.
    net_.SetNodeDead(site, true);
    return reply.status();
  }
  if (reply->status != Status::kOk) {
    // The home refused: a crash raced this recovery and is mid-teardown.  Go
    // back down; the next attempt lands after the crash completes.
    net_.SetNodeDead(site, true);
    return reply->status;
  }
  return reply->arg;
}

bool DsmCluster::SiteCrashed(SiteId site) const { return net_.NodeDead(site); }

uint64_t DsmCluster::DirectorySiteRecovered(SiteId site) {
  MutexLock lock(dir_mu_);
  dead_sites_ &= ~SiteBit(site);
  uint64_t drained = 0;
  auto it = pending_grants_.find(site);
  if (it != pending_grants_.end()) {
    // Drain = discard: the faulting thread that wanted each grant saw its
    // error long ago, and the crash wiped the cache the grant would have
    // filled.  The swap makes a re-delivered drain a no-op.
    drained = it->second.size();
    pending_grants_.erase(it);
  }
  pending_grants_drained_.fetch_add(drained, std::memory_order_relaxed);
  site_recoveries_.fetch_add(1, std::memory_order_relaxed);
  WalAppendEvent(kWalSiteRecovered, static_cast<uint64_t>(site), drained);
  return drained;
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

void DsmCluster::WalAppendState(uint64_t key, SegOffset page, const PageDir& dir) {
  std::vector<std::byte> payload;
  journal::PutU64(&payload, dir.owner < 0 ? kNoOwnerWire : static_cast<uint64_t>(dir.owner));
  journal::PutU64(&payload, dir.sharers);
  MutexLock lock(wal_mu_);
  std::vector<std::byte> record = journal::SerializeRecord(
      kWalState, ++wal_seq_, key, page, payload.data(), payload.size());
  wal_.insert(wal_.end(), record.begin(), record.end());
  wal_records_.fetch_add(1, std::memory_order_relaxed);
}

void DsmCluster::WalAppendData(uint64_t key, SegOffset page, const std::byte* bytes,
                               size_t size) {
  MutexLock lock(wal_mu_);
  std::vector<std::byte> record =
      journal::SerializeRecord(kWalData, ++wal_seq_, key, page, bytes, size);
  wal_.insert(wal_.end(), record.begin(), record.end());
  wal_records_.fetch_add(1, std::memory_order_relaxed);
}

void DsmCluster::WalAppendEvent(uint8_t type, uint64_t site, uint64_t arg) {
  std::vector<std::byte> payload;
  journal::PutU64(&payload, arg);
  MutexLock lock(wal_mu_);
  std::vector<std::byte> record =
      journal::SerializeRecord(type, ++wal_seq_, site, 0, payload.data(), payload.size());
  wal_.insert(wal_.end(), record.begin(), record.end());
  wal_records_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t DsmCluster::WalRecordCount() const {
  return wal_records_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Shadow oracle
// ---------------------------------------------------------------------------

Status DsmCluster::OracleCheck(std::string* diagnostic) {
  auto fail = [&](std::string message) {
    if (diagnostic != nullptr) {
      *diagnostic = std::move(message);
    }
    return Status::kBusError;
  };

  MutexLock lock(dir_mu_);
  std::vector<std::byte> wal_copy;
  {
    MutexLock wal_lock(wal_mu_);
    wal_copy = wal_;
  }

  // Replay the WAL from empty into a shadow directory + shadow byte store.
  struct ShadowPage {
    SiteId owner = -1;
    uint64_t sharers = 0;
  };
  std::map<std::pair<uint64_t, SegOffset>, ShadowPage> shadow_pages;
  std::map<uint64_t, std::vector<std::byte>> shadow_data;
  {
    // Size the shadow byte stores from the live segment table (creation is
    // not journaled; only transitions and commits are).
    for (const auto& [key, segment] : segments_) {
      shadow_data[key].assign(segment.size, std::byte{0});
    }
  }
  uint64_t last_seq = 0;
  size_t pos = 0;
  while (pos < wal_copy.size()) {
    journal::RecordView record;
    if (!journal::ParseRecord(wal_copy, pos, &record)) {
      return fail("WAL: torn or corrupt record at byte " + std::to_string(pos));
    }
    if (record.seq != last_seq + 1) {
      return fail("WAL: sequence gap at record " + std::to_string(record.seq));
    }
    last_seq = record.seq;
    switch (record.type) {
      case kWalState: {
        if (record.payload_size != 16) {
          return fail("WAL: short state payload at seq " + std::to_string(record.seq));
        }
        uint64_t owner = journal::GetU64(record.payload);
        ShadowPage& page = shadow_pages[{record.key, record.offset}];
        page.owner = owner == kNoOwnerWire ? -1 : static_cast<SiteId>(owner);
        page.sharers = journal::GetU64(record.payload + 8);
        break;
      }
      case kWalData: {
        auto it = shadow_data.find(record.key);
        if (it == shadow_data.end() ||
            record.offset + record.payload_size > it->second.size()) {
          return fail("WAL: data record outside segment at seq " +
                      std::to_string(record.seq));
        }
        std::memcpy(it->second.data() + record.offset, record.payload,
                    record.payload_size);
        break;
      }
      case kWalSiteDeath:
      case kWalSiteRecovered:
        break;  // audit markers; the per-page state records carry the effects
      default:
        return fail("WAL: unknown record type " + std::to_string(record.type));
    }
    pos += record.total_bytes;
  }

  // Structural invariants + shadow comparison over the live directory.
  const uint64_t site_mask =
      sites_.size() >= 64 ? ~0ull : (1ull << sites_.size()) - 1;
  for (const auto& [key, segment] : segments_) {
    for (const auto& [page, dir] : segment.pages) {
      std::string where =
          "key " + std::to_string(key) + " page " + std::to_string(page);
      if (dir.busy) {
        return fail("latch stuck: " + where + " still busy on a quiesced cluster");
      }
      if (dir.owner != -1 && dir.sharers != 0) {
        return fail("single-writer violated: " + where + " owned by site " +
                    std::to_string(dir.owner) + " with sharer bitmap " +
                    std::to_string(dir.sharers));
      }
      if ((dir.sharers & ~site_mask) != 0) {
        return fail("sharer bitmap names nonexistent sites: " + where);
      }
      if (dir.owner != -1 && (dead_sites_ & SiteBit(dir.owner)) != 0) {
        return fail("dead site owns a page: " + where);
      }
      if ((dir.sharers & dead_sites_) != 0) {
        return fail("dead site shares a page: " + where);
      }
      ShadowPage shadow;
      auto it = shadow_pages.find({key, page});
      if (it != shadow_pages.end()) {
        shadow = it->second;
      }
      if (shadow.owner != dir.owner || shadow.sharers != dir.sharers) {
        return fail("WAL replay diverges from live directory: " + where +
                    " live owner " + std::to_string(dir.owner) + "/sharers " +
                    std::to_string(dir.sharers) + " vs replayed owner " +
                    std::to_string(shadow.owner) + "/sharers " +
                    std::to_string(shadow.sharers));
      }
    }
    // Committed bytes: replaying every journaled writeback must reproduce the
    // authoritative store exactly — no committed store lost, none invented.
    const std::vector<std::byte>& replayed = shadow_data[key];
    for (SegOffset at = 0; at < segment.size; at += page_size_) {
      auto data = segment.data.find(at);
      const std::byte* live = data != segment.data.end() ? data->second.data() : nullptr;
      for (size_t i = 0; i < page_size_; ++i) {
        std::byte live_byte = live != nullptr ? live[i] : std::byte{0};
        if (replayed[at + i] != live_byte) {
          return fail("committed bytes diverge from WAL replay: key " +
                      std::to_string(key) + " offset " + std::to_string(at + i));
        }
      }
    }
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Stats and introspection
// ---------------------------------------------------------------------------

DsmCluster::Stats DsmCluster::stats() const {
  SimNet::Stats net = net_.stats();
  Stats s;
  s.read_faults = read_faults_.load(std::memory_order_relaxed);
  s.write_grants = write_grants_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.recalls = recalls_.load(std::memory_order_relaxed);
  s.network_messages = net.messages;
  s.network_bytes = net.bytes;
  s.network_drops = net.drops;
  s.network_retransmits = net.retransmits;
  s.dedup_replays = net.dedup_replays;
  s.recall_messages = recall_messages_.load(std::memory_order_relaxed);
  s.invalidate_messages = invalidate_messages_.load(std::memory_order_relaxed);
  s.wal_records = wal_records_.load(std::memory_order_relaxed);
  s.writebacks_rejected = writebacks_rejected_.load(std::memory_order_relaxed);
  s.transitions_aborted = transitions_aborted_.load(std::memory_order_relaxed);
  s.site_crashes = site_crashes_.load(std::memory_order_relaxed);
  s.site_recoveries = site_recoveries_.load(std::memory_order_relaxed);
  s.pending_grants_recorded = pending_grants_recorded_.load(std::memory_order_relaxed);
  s.pending_grants_drained = pending_grants_drained_.load(std::memory_order_relaxed);
  return s;
}

SiteId DsmCluster::OwnerOf(const std::string& name, SegOffset page_offset) {
  Result<uint64_t> key = LookupSegment(name);
  if (!key.ok()) {
    return -1;
  }
  MutexLock lock(dir_mu_);
  Segment* segment = FindSegment(*key);
  if (segment == nullptr) {
    return -1;
  }
  auto it = segment->pages.find(AlignDown(page_offset, page_size_));
  return it == segment->pages.end() ? -1 : it->second.owner;
}

std::set<SiteId> DsmCluster::ReadersOf(const std::string& name, SegOffset page_offset) {
  Result<uint64_t> key = LookupSegment(name);
  if (!key.ok()) {
    return {};
  }
  MutexLock lock(dir_mu_);
  Segment* segment = FindSegment(*key);
  if (segment == nullptr) {
    return {};
  }
  auto it = segment->pages.find(AlignDown(page_offset, page_size_));
  std::set<SiteId> readers;
  if (it == segment->pages.end()) {
    return readers;
  }
  for (SiteId site = 0; site < static_cast<SiteId>(sites_.size()); ++site) {
    if ((it->second.sharers & SiteBit(site)) != 0) {
      readers.insert(site);
    }
  }
  return readers;
}

}  // namespace gvm
