#include "src/dsm/dsm.h"

#include <cassert>
#include <cstring>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

// The per-site mapper for shared segments: forwards reads/writes to the home
// directory and implements the getWriteAccess hook with the invalidation protocol.
class CoherentMapper final : public Mapper {
 public:
  CoherentMapper(DsmCluster& cluster, DsmSite& site) : cluster_(cluster), site_(site) {}

  Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override {
    return cluster_.DirectoryRead(site_.id(), key, offset, size, out);
  }

  Status Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) override {
    return cluster_.DirectoryWriteBack(site_.id(), key, offset, data, size);
  }

  Status GetWriteAccess(uint64_t key, SegOffset offset, size_t size) override {
    return cluster_.DirectoryAcquireWrite(site_.id(), key, offset, size);
  }

  Prot FillProtection(uint64_t key, SegOffset offset, size_t size) override {
    (void)size;
    return cluster_.DirectoryFillProt(site_.id(), key, offset);
  }

  // Directory operations recall other sites, whose push-outs re-enter their
  // own servers: serve locks held across that nesting would form a lock-order
  // cycle with the segment managers, so coherent dispatch stays lock-free.
  bool thread_safe_dispatch() const override { return true; }

 private:
  DsmCluster& cluster_;
  DsmSite& site_;
};

// ---------------------------------------------------------------------------
// DsmSite
// ---------------------------------------------------------------------------

DsmSite::DsmSite(DsmCluster& cluster, SiteId id, size_t frames, size_t page_size)
    : cluster_(cluster), id_(id) {
  memory_ = std::make_unique<PhysicalMemory>(frames, page_size);
  mmu_ = std::make_unique<SoftMmu>(page_size);
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  vm_ = std::make_unique<PagedVm>(*memory_, *mmu_, options);
  nucleus_ = std::make_unique<Nucleus>(*vm_);
  swap_ = std::make_unique<SwapMapper>(page_size);
  swap_server_ = std::make_unique<MapperServer>(nucleus_->ipc(), *swap_);
  nucleus_->BindDefaultMapper(swap_server_.get());
  coherent_ = std::make_unique<CoherentMapper>(cluster, *this);
  coherent_server_ = std::make_unique<MapperServer>(nucleus_->ipc(), *coherent_);
  nucleus_->RegisterMapper(coherent_server_.get());
  actor_ = *nucleus_->ActorCreate("site" + std::to_string(id));
}

DsmSite::~DsmSite() = default;

Result<Region*> DsmSite::MapShared(const std::string& segment_name, Vaddr va, uint64_t size,
                                   Prot prot) {
  Result<uint64_t> key = cluster_.LookupSegment(segment_name);
  if (!key.ok()) {
    return key.status();
  }
  Capability capability{coherent_server_->port(), *key};
  Result<Region*> region = actor_->RgnMap(va, size, prot, capability, 0);
  if (region.ok()) {
    Result<Region*> r = region;
    RegionStatus status = (*r)->GetStatus();
    shared_caches_[*key] = status.cache;
  }
  return region;
}

// ---------------------------------------------------------------------------
// DsmCluster: directory and protocol
// ---------------------------------------------------------------------------

DsmCluster::DsmCluster(size_t page_size) : page_size_(page_size) {}

DsmCluster::~DsmCluster() = default;

DsmSite* DsmCluster::AddSite(size_t frames) {
  SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(std::make_unique<DsmSite>(*this, id, frames, page_size_));
  return sites_.back().get();
}

Status DsmCluster::CreateSharedSegment(const std::string& name, uint64_t size) {
  if (names_.contains(name)) {
    return Status::kAlreadyExists;
  }
  uint64_t key = next_key_++;
  names_[name] = key;
  Segment& segment = segments_[key];
  segment.key = key;
  segment.size = AlignUp(size, page_size_);
  return Status::kOk;
}

DsmCluster::Segment* DsmCluster::FindSegment(uint64_t key) {
  auto it = segments_.find(key);
  return it == segments_.end() ? nullptr : &it->second;
}

Result<uint64_t> DsmCluster::LookupSegment(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

void DsmCluster::CountMessage(size_t bytes) {
  ++stats_.network_messages;
  stats_.network_bytes += bytes;
}

Status DsmCluster::DirectoryRead(SiteId reader, uint64_t key, SegOffset offset, size_t size,
                                 std::vector<std::byte>* out) {
  Segment* segment = FindSegment(key);
  if (segment == nullptr) {
    return Status::kNotFound;
  }
  CountMessage(size);
  for (SegOffset at = AlignDown(offset, page_size_); at < offset + size; at += page_size_) {
    PageState& page = segment->pages[at];
    // A remote writer holds the only current copy: recall it home first, demoting
    // the writer to reader.
    if (page.owner != -1 && page.owner != reader) {
      GVM_RETURN_IF_ERROR(RemoteRecall(page.owner, key, at, page_size_));
      page.readers.insert(page.owner);
      page.owner = -1;
    }
    page.readers.insert(reader);
    ++stats_.read_faults;
  }
  // Serve the authoritative bytes.
  out->assign(size, std::byte{0});
  for (size_t done = 0; done < size; done += page_size_) {
    auto data = segment->data.find(AlignDown(offset + done, page_size_));
    if (data != segment->data.end()) {
      std::memcpy(out->data() + done, data->second.data(),
                  std::min(page_size_, size - done));
    }
  }
  return Status::kOk;
}

Status DsmCluster::DirectoryWriteBack(SiteId writer, uint64_t key, SegOffset offset,
                                      const std::byte* data, size_t size) {
  (void)writer;
  Segment* segment = FindSegment(key);
  if (segment == nullptr) {
    return Status::kNotFound;
  }
  CountMessage(size);
  for (size_t done = 0; done < size; done += page_size_) {
    auto& page = segment->data[AlignDown(offset + done, page_size_)];
    page.assign(page_size_, std::byte{0});
    std::memcpy(page.data(), data + done, std::min(page_size_, size - done));
  }
  return Status::kOk;
}

Status DsmCluster::DirectoryAcquireWrite(SiteId writer, uint64_t key, SegOffset offset,
                                         size_t size) {
  Segment* segment = FindSegment(key);
  if (segment == nullptr) {
    return Status::kNotFound;
  }
  CountMessage(64);  // control message
  for (SegOffset at = AlignDown(offset, page_size_); at < offset + size; at += page_size_) {
    PageState& page = segment->pages[at];
    if (page.owner == writer) {
      continue;  // already exclusive here
    }
    if (page.owner != -1) {
      GVM_RETURN_IF_ERROR(RemoteRecall(page.owner, key, at, page_size_));
      GVM_RETURN_IF_ERROR(RemoteInvalidate(page.owner, key, at, page_size_));
      page.owner = -1;
    }
    for (SiteId reader : page.readers) {
      if (reader != writer) {
        GVM_RETURN_IF_ERROR(RemoteInvalidate(reader, key, at, page_size_));
      }
    }
    page.readers.clear();
    page.owner = writer;
    ++stats_.write_grants;
  }
  return Status::kOk;
}

Prot DsmCluster::DirectoryFillProt(SiteId reader, uint64_t key, SegOffset offset) {
  Segment* segment = FindSegment(key);
  if (segment == nullptr) {
    return Prot::kAll;
  }
  const PageState& page = segment->pages[AlignDown(offset, page_size_)];
  // Owners get writable fills; readers get read-only copies so their first write
  // raises the getWriteAccess upcall.
  return page.owner == reader ? Prot::kAll : Prot::kReadExecute;
}

Status DsmCluster::RemoteRecall(SiteId owner, uint64_t key, SegOffset offset, size_t size) {
  // The directory uses the owner site's GMI cache-control surface: sync pushes the
  // dirty page home (through the owner's CoherentMapper), setProtection demotes
  // the cached copy to read-only.
  DsmSite* site = sites_[owner].get();
  auto cache_it = site->shared_caches_.find(key);
  if (cache_it == site->shared_caches_.end()) {
    return Status::kOk;  // not mapped there (nothing cached)
  }
  CountMessage(64 + size);
  ++stats_.recalls;
  GVM_RETURN_IF_ERROR(cache_it->second->Sync());
  return cache_it->second->SetProtection(offset, size, Prot::kReadExecute);
}

Status DsmCluster::RemoteInvalidate(SiteId reader, uint64_t key, SegOffset offset,
                                    size_t size) {
  DsmSite* site = sites_[reader].get();
  auto cache_it = site->shared_caches_.find(key);
  if (cache_it == site->shared_caches_.end()) {
    return Status::kOk;
  }
  CountMessage(64);
  ++stats_.invalidations;
  return cache_it->second->Invalidate(offset, size);
}

SiteId DsmCluster::OwnerOf(const std::string& name, SegOffset page_offset) {
  Result<uint64_t> key = LookupSegment(name);
  if (!key.ok()) {
    return -1;
  }
  return segments_[*key].pages[AlignDown(page_offset, page_size_)].owner;
}

std::set<SiteId> DsmCluster::ReadersOf(const std::string& name, SegOffset page_offset) {
  Result<uint64_t> key = LookupSegment(name);
  if (!key.ok()) {
    return {};
  }
  return segments_[*key].pages[AlignDown(page_offset, page_size_)].readers;
}

}  // namespace gvm
