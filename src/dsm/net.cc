#include "src/dsm/net.h"

#include <chrono>
#include <thread>

namespace gvm {

namespace {

// Rough wire cost of one message: fixed header plus payload.
constexpr uint64_t kHeaderWireBytes = 64;

}  // namespace

SimNet::SimNet(uint64_t seed) : rng_(seed) {}

void SimNet::Register(NodeId node, Handler handler) {
  MutexLock lock(mu_);
  handlers_[node] = std::move(handler);
  dead_.erase(node);
}

void SimNet::SetNodeDead(NodeId node, bool dead) {
  MutexLock lock(mu_);
  if (dead) {
    dead_.insert(node);
  } else {
    dead_.erase(node);
  }
}

bool SimNet::NodeDead(NodeId node) const {
  MutexLock lock(mu_);
  return dead_.count(node) != 0;
}

void SimNet::Partition(NodeId a, NodeId b) {
  MutexLock lock(mu_);
  partitions_.insert(PairKey(a, b));
}

void SimNet::Heal(NodeId a, NodeId b) {
  MutexLock lock(mu_);
  partitions_.erase(PairKey(a, b));
}

void SimNet::HealAll() {
  MutexLock lock(mu_);
  partitions_.clear();
}

bool SimNet::Partitioned(NodeId a, NodeId b) const {
  MutexLock lock(mu_);
  return partitions_.count(PairKey(a, b)) != 0;
}

void SimNet::SetLinkPolicy(NodeId a, NodeId b, const LinkPolicy& policy) {
  MutexLock lock(mu_);
  policies_[PairKey(a, b)] = policy;
}

void SimNet::SetDefaultPolicy(const LinkPolicy& policy) {
  MutexLock lock(mu_);
  default_policy_ = policy;
}

SimNet::Stats SimNet::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Result<NetMessage> SimNet::Call(NodeId src, NodeId dst, NetMessage message) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  const std::pair<NodeId, NodeId> link_key = PairKey(src, dst);

  Handler handler;
  LinkPolicy policy;
  {
    MutexLock lock(mu_);
    if (dead_.count(src) != 0 || dead_.count(dst) != 0) {
      ++stats_.dead_node_rejects;
      return Status::kPortDead;
    }
    auto it = handlers_.find(dst);
    if (it == handlers_.end()) {
      ++stats_.dead_node_rejects;
      return Status::kPortDead;
    }
    handler = it->second;  // copy: a handler may re-register concurrently
    auto pol = policies_.find(link_key);
    policy = pol != policies_.end() ? pol->second : default_policy_;
    Link& link = links_[link_key];
    message.seq = link.next_seq++;
  }
  message.src = src;
  message.dst = dst;
  const uint64_t wire_bytes = kHeaderWireBytes + message.payload.size();

  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) {
      MutexLock lock(mu_);
      ++stats_.retransmits;
    }

    // The injector may cut the link; an injected partition persists until the
    // harness heals it, exactly like an explicit Partition().
    if (injector != nullptr &&
        injector->Check(FaultSite::kNetPartition) != Status::kOk) {
      MutexLock lock(mu_);
      if (partitions_.insert(link_key).second) {
        ++stats_.partitions_injected;
      }
    }

    uint64_t delay_us = policy.latency_us;
    bool drop_attempt = false;
    bool drop_reply_half = false;
    {
      MutexLock lock(mu_);
      if (dead_.count(src) != 0 || dead_.count(dst) != 0) {
        ++stats_.dead_node_rejects;
        return Status::kPortDead;
      }
      if (partitions_.count(link_key) != 0) {
        ++stats_.partition_rejects;
        continue;
      }
      if (policy.jitter_us > 0) {
        delay_us += rng_.Below(policy.jitter_us + 1);
      }
      if (policy.drop_num > 0 &&
          rng_.Chance(policy.drop_num, policy.drop_den)) {
        drop_attempt = true;
      }
      // Each lost attempt loses either the request half (the handler never
      // runs this attempt) or the reply half (it runs, its ack vanishes, and
      // the retransmit exercises the dedup path) — seeded coin flip.
      drop_reply_half = rng_.Chance(1, 2);
    }
    if (injector != nullptr &&
        injector->Check(FaultSite::kNetDeliver) != Status::kOk) {
      drop_attempt = true;
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    if (drop_attempt && !drop_reply_half) {
      MutexLock lock(mu_);
      ++stats_.drops;
      continue;
    }

    // Delivery.  A retransmitted sequence number the receiver has already
    // answered is served from the dedup cache: the handler must not run twice.
    bool have_reply = false;
    NetMessage reply;
    {
      MutexLock lock(mu_);
      Link& link = links_[link_key];
      auto cached = link.replies.find(message.seq);
      if (cached != link.replies.end()) {
        ++stats_.dedup_replays;
        reply = cached->second;
        have_reply = true;
      }
    }
    if (!have_reply) {
      {
        MutexLock lock(mu_);
        ++stats_.messages;
        stats_.bytes += wire_bytes;
      }
      reply.op = NetOp::kReply;
      reply.src = dst;
      reply.dst = src;
      reply.seq = message.seq;
      handler(message, &reply);  // no SimNet lock held
      MutexLock lock(mu_);
      // The handler may have killed the destination (site-crash injection
      // mid-handling): its reply is then lost with it, not cached, and the
      // caller sees the death rather than a half-made answer.
      if (dead_.count(dst) != 0 || dead_.count(src) != 0) {
        ++stats_.dead_node_rejects;
        return Status::kPortDead;
      }
      Link& link = links_[link_key];
      link.replies[message.seq] = reply;
      link.reply_order.push_back(message.seq);
      while (link.reply_order.size() > 512) {
        link.replies.erase(link.reply_order.front());
        link.reply_order.pop_front();
      }
    }
    if (drop_attempt && drop_reply_half) {
      MutexLock lock(mu_);
      ++stats_.drops;
      continue;  // the reply vanished; retransmit hits the dedup cache
    }
    {
      MutexLock lock(mu_);
      ++stats_.messages;
      stats_.bytes += kHeaderWireBytes + reply.payload.size();
    }
    return reply;
  }

  MutexLock lock(mu_);
  ++stats_.timeouts;
  return Status::kTimeout;
}

}  // namespace gvm
