// SimNet: the simulated cluster interconnect under the DSM coherence protocol.
//
// The paper distributes segments behind network-transparent mappers (section
// 5.1.1); this module supplies the network those mappers would actually cross,
// with every production failure mode injectable and every run replayable from
// a seed:
//
//   * typed protocol messages with per-link monotonic sequence numbers;
//   * lossy delivery: the kNetDeliver fault site drops one delivery attempt
//     (request or reply half, seeded), forcing the sender's bounded
//     retransmission under the *same* sequence number;
//   * receiver-side dedup: a link remembers recently answered sequence numbers
//     and replays the cached reply without re-running the handler, so every
//     handler side-effect is exactly-once per logical call even under
//     arbitrary retransmission — this is what makes recall/invalidate acks
//     idempotently re-issuable;
//   * per-link latency + seeded jitter (messages on concurrent threads
//     genuinely reorder) configurable programmatically, plus plan-driven
//     latency through the injector site;
//   * partitions: explicit (Partition/Heal/HealAll) or injected
//     (kNetPartition fires -> that link stays down until healed);
//   * node death: a crashed site's node fails every delivery to or from it
//     with kPortDead, the cluster-level analogue of PR 4's port-death links.
//
// Delivery is synchronous (the handler runs on the caller's thread, nested
// calls and all), which keeps the protocol deterministic under seeded chaos;
// concurrency comes from the many application threads of the sites.
#ifndef GVM_SRC_DSM_NET_H_
#define GVM_SRC_DSM_NET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/sync/annotated_mutex.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace gvm {

// A network node: site ids are >= 0, the home directory is kHomeNode.
using NodeId = int;
inline constexpr NodeId kHomeNode = -1;

// The DSM wire protocol.
enum class NetOp : uint8_t {
  kReadReq = 1,     // site -> home: pull a page range, become a sharer
  kWriteBack,       // owner -> home: committed bytes travelling home
  kAcquireWrite,    // site -> home: request exclusive ownership of a range
  kFillProtQuery,   // site -> home: what protection should a fill carry?
  kRecall,          // home -> owner: sync dirty pages home, demote to reader
  kInvalidate,      // home -> sharer: discard cached copies of a range
  kSiteRecovered,   // supervisor -> home: a crashed site re-joined
  kReply,
};

struct NetMessage {
  NetOp op = NetOp::kReply;
  NodeId src = kHomeNode;
  NodeId dst = kHomeNode;
  uint64_t seq = 0;       // per-link, assigned by SimNet::Call
  uint64_t key = 0;       // segment key
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t arg = 0;       // op-specific (site id, prot bits, ...)
  Status status = Status::kOk;  // application-level result (replies)
  std::vector<std::byte> payload;
};

class SimNet {
 public:
  // Handles one delivered message, filling *reply.  Runs on the caller's
  // thread with no SimNet lock held; may itself issue nested Calls.
  using Handler = std::function<void(const NetMessage& request, NetMessage* reply)>;

  struct LinkPolicy {
    uint64_t latency_us = 0;   // fixed one-way delay per delivery attempt
    uint64_t jitter_us = 0;    // seeded uniform extra delay (reorders messages)
    uint64_t drop_num = 0;     // per-attempt drop probability num/den
    uint64_t drop_den = 100;   // (on top of the kNetDeliver injector site)
  };

  struct Stats {
    uint64_t messages = 0;         // delivery attempts that reached a handler
    uint64_t bytes = 0;            // payload bytes carried by those attempts
    uint64_t drops = 0;            // attempts dropped (injected or policy)
    uint64_t retransmits = 0;      // attempts after the first for one call
    uint64_t dedup_replays = 0;    // cached replies served without a handler run
    uint64_t partition_rejects = 0;  // attempts refused by a partitioned link
    uint64_t partitions_injected = 0;  // links cut by the kNetPartition site
    uint64_t timeouts = 0;         // calls that exhausted their attempts
    uint64_t dead_node_rejects = 0;  // calls refused because an end was dead
  };

  explicit SimNet(uint64_t seed = 1);

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  void Register(NodeId node, Handler handler) GVM_EXCLUDES(mu_);
  void SetNodeDead(NodeId node, bool dead) GVM_EXCLUDES(mu_);
  bool NodeDead(NodeId node) const GVM_EXCLUDES(mu_);

  // One logical RPC: assigns the link sequence number, then attempts delivery
  // up to `max_attempts_`, retransmitting through drops.  Errors:
  //   kPortDead  — either end is dead (fail fast, like PR 4's death links);
  //   kTimeout   — the link stayed partitioned or lossy past the attempt
  //                budget; no state was necessarily changed remotely, but the
  //                sequence number makes a later re-issue safe.
  Result<NetMessage> Call(NodeId src, NodeId dst, NetMessage message)
      GVM_EXCLUDES(mu_);

  void Partition(NodeId a, NodeId b) GVM_EXCLUDES(mu_);
  void Heal(NodeId a, NodeId b) GVM_EXCLUDES(mu_);
  void HealAll() GVM_EXCLUDES(mu_);
  bool Partitioned(NodeId a, NodeId b) const GVM_EXCLUDES(mu_);

  void SetLinkPolicy(NodeId a, NodeId b, const LinkPolicy& policy)
      GVM_EXCLUDES(mu_);
  // Applied to every link without an explicit policy.
  void SetDefaultPolicy(const LinkPolicy& policy) GVM_EXCLUDES(mu_);

  // Injector driving kNetDeliver / kNetPartition (latency via plan latency).
  // Null disables; the injector must outlive this net.
  void BindFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  void set_max_attempts(int attempts) { max_attempts_ = attempts; }

  Stats stats() const GVM_EXCLUDES(mu_);

 private:
  struct Link {
    uint64_t next_seq = 1;
    // seq -> cached reply for retransmit dedup (bounded FIFO).
    std::map<uint64_t, NetMessage> replies;
    std::deque<uint64_t> reply_order;
  };

  static std::pair<NodeId, NodeId> PairKey(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  std::atomic<FaultInjector*> injector_{nullptr};
  // Tunable from test setup while traffic may already be flowing.
  std::atomic<int> max_attempts_{16};

  mutable Mutex mu_{Rank::kDsmNet, "SimNet::mu_"};
  std::map<NodeId, Handler> handlers_ GVM_GUARDED_BY(mu_);
  std::set<NodeId> dead_ GVM_GUARDED_BY(mu_);
  std::set<std::pair<NodeId, NodeId>> partitions_ GVM_GUARDED_BY(mu_);
  std::map<std::pair<NodeId, NodeId>, Link> links_ GVM_GUARDED_BY(mu_);
  std::map<std::pair<NodeId, NodeId>, LinkPolicy> policies_ GVM_GUARDED_BY(mu_);
  LinkPolicy default_policy_ GVM_GUARDED_BY(mu_);
  Rng rng_ GVM_GUARDED_BY(mu_);
  Stats stats_ GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_DSM_NET_H_
