// Distributed coherent virtual memory over the GMI (paper section 3.3.3):
//
//   "A segment server may need to control some aspects of caching.  For instance,
//    to implement distributed coherent virtual memory [Li & Hudak], it needs to
//    flush and/or lock the cache at times.  The GMI provides operations flush,
//    sync, invalidate and setProtection to control the cache state."
//
// This module builds exactly that: a cluster of simulated *sites*, each running
// its own memory manager and Nucleus, sharing segments kept coherent by a
// home-based single-writer/multiple-reader write-invalidate protocol.  The
// protocol is implemented entirely with the GMI/mapper machinery:
//   * reads pull pages in with a read-only fill protection;
//   * a write triggers the getWriteAccess upcall; the home directory then recalls
//     the data from the current owner (cache.sync + cache.setProtection) and
//     invalidates the other readers (cache.invalidate) before granting;
//   * dirty pages flow home through ordinary pushOut/mapper-write traffic.
#ifndef GVM_SRC_DSM_DSM_H_
#define GVM_SRC_DSM_DSM_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"

namespace gvm {

using SiteId = int;

class DsmCluster;

// One machine in the cluster: its own physical memory, MMU, PVM and Nucleus.
class DsmSite {
 public:
  DsmSite(DsmCluster& cluster, SiteId id, size_t frames, size_t page_size);
  ~DsmSite();

  SiteId id() const { return id_; }
  Nucleus& nucleus() { return *nucleus_; }
  PagedVm& vm() { return *vm_; }
  Actor& actor() { return *actor_; }

  // Map a shared segment into this site's actor.
  Result<Region*> MapShared(const std::string& segment_name, Vaddr va, uint64_t size,
                            Prot prot);

  // Typed accessors against the site's actor (the "application").
  Status Read(Vaddr va, void* buffer, size_t size) { return actor_->Read(va, buffer, size); }
  Status Write(Vaddr va, const void* buffer, size_t size) {
    return actor_->Write(va, buffer, size);
  }
  template <typename T>
  Result<T> Load(Vaddr va) {
    T value{};
    Status s = Read(va, &value, sizeof(T));
    if (s != Status::kOk) {
      return s;
    }
    return value;
  }
  template <typename T>
  Status Store(Vaddr va, T value) {
    return Write(va, &value, sizeof(T));
  }

 private:
  friend class DsmCluster;
  friend class CoherentMapper;

  DsmCluster& cluster_;
  SiteId id_;
  std::unique_ptr<PhysicalMemory> memory_;
  std::unique_ptr<SoftMmu> mmu_;
  std::unique_ptr<PagedVm> vm_;
  std::unique_ptr<Nucleus> nucleus_;
  std::unique_ptr<SwapMapper> swap_;
  std::unique_ptr<MapperServer> swap_server_;
  std::unique_ptr<class CoherentMapper> coherent_;
  std::unique_ptr<MapperServer> coherent_server_;
  Actor* actor_ = nullptr;
  // Shared-segment key -> the site's local cache (held referenced while mapped).
  std::map<uint64_t, Cache*> shared_caches_;
};

// The home directory of the shared segments: per-page owner and copy-set, plus the
// authoritative bytes.  Plays the role of Li & Hudak's manager.
class DsmCluster {
 public:
  struct Stats {
    uint64_t read_faults = 0;        // pages served to readers
    uint64_t write_grants = 0;       // ownership transfers
    uint64_t invalidations = 0;      // remote copies invalidated
    uint64_t recalls = 0;            // dirty data recalled from an owner
    uint64_t network_messages = 0;   // simulated protocol messages
    uint64_t network_bytes = 0;      // simulated payload bytes
  };

  explicit DsmCluster(size_t page_size);
  ~DsmCluster();

  DsmSite* AddSite(size_t frames = 256);
  DsmSite* site(SiteId id) { return sites_[id].get(); }
  size_t SiteCount() const { return sites_.size(); }

  // Create a shared segment of `size` bytes, initially zero.
  Status CreateSharedSegment(const std::string& name, uint64_t size);

  const Stats& stats() const { return stats_; }
  size_t page_size() const { return page_size_; }

  // Introspection for tests: current owner of a page (-1 if none) and reader set.
  SiteId OwnerOf(const std::string& name, SegOffset page_offset);
  std::set<SiteId> ReadersOf(const std::string& name, SegOffset page_offset);

 private:
  friend class DsmSite;
  friend class CoherentMapper;

  struct PageState {
    SiteId owner = -1;          // site with write access, or -1
    std::set<SiteId> readers;   // sites holding read-only copies
  };
  struct Segment {
    uint64_t key = 0;
    uint64_t size = 0;
    std::map<SegOffset, std::vector<std::byte>> data;  // authoritative bytes
    std::map<SegOffset, PageState> pages;
  };

  Segment* FindSegment(uint64_t key);
  Result<uint64_t> LookupSegment(const std::string& name);

  // Protocol actions (called by the sites' CoherentMappers).
  Status DirectoryRead(SiteId reader, uint64_t key, SegOffset offset, size_t size,
                       std::vector<std::byte>* out);
  Status DirectoryWriteBack(SiteId writer, uint64_t key, SegOffset offset,
                            const std::byte* data, size_t size);
  Status DirectoryAcquireWrite(SiteId writer, uint64_t key, SegOffset offset, size_t size);
  Prot DirectoryFillProt(SiteId reader, uint64_t key, SegOffset offset);

  // Remote cache control: run a GMI cache operation on another site's local cache.
  Status RemoteRecall(SiteId owner, uint64_t key, SegOffset offset, size_t size);
  Status RemoteInvalidate(SiteId reader, uint64_t key, SegOffset offset, size_t size);

  void CountMessage(size_t bytes);

  const size_t page_size_;
  std::vector<std::unique_ptr<DsmSite>> sites_;
  std::map<std::string, uint64_t> names_;
  std::map<uint64_t, Segment> segments_;
  uint64_t next_key_ = 1;
  Stats stats_;
};

}  // namespace gvm

#endif  // GVM_SRC_DSM_DSM_H_
