// Distributed coherent virtual memory over the GMI (paper section 3.3.3):
//
//   "A segment server may need to control some aspects of caching.  For instance,
//    to implement distributed coherent virtual memory [Li & Hudak], it needs to
//    flush and/or lock the cache at times.  The GMI provides operations flush,
//    sync, invalidate and setProtection to control the cache state."
//
// This module builds exactly that: a cluster of simulated *sites*, each running
// its own memory manager and Nucleus, sharing segments kept coherent by a
// home-based single-writer/multiple-reader write-invalidate protocol.  The
// protocol is implemented entirely with the GMI/mapper machinery:
//   * reads pull pages in with a read-only fill protection;
//   * a write triggers the getWriteAccess upcall; the home directory then recalls
//     the data from the current owner (cache.sync + cache.setProtection) and
//     invalidates the other readers (cache.invalidate) before granting;
//   * dirty pages flow home through ordinary pushOut/mapper-write traffic.
//
// Unlike the original in-process toy, every protocol step now crosses SimNet
// (src/dsm/net.h): a lossy, partitionable, latency-injected simulated
// interconnect with per-link sequence numbers and receiver-side dedup, so
// recalls and invalidation acks are idempotently re-issuable.  The home keeps
// a real per-segment directory — owner + sharer *bitmap* per page, transitions
// batched into one message per contiguous per-site range — and journals every
// state transition and committed writeback through a write-ahead log built on
// the same checksummed record machinery as the journaled swap mapper
// (src/nucleus/journal_record.h).  Whole sites can crash (their caches and
// uncommitted stores are lost; the home's last committed bytes stay
// authoritative) and later re-join, at which point the directory drains the
// grants left pending by the death exactly once.  DESIGN.md section 12 has the
// full protocol walkthrough and the oracle invariants OracleCheck() enforces.
#ifndef GVM_SRC_DSM_DSM_H_
#define GVM_SRC_DSM_DSM_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/dsm/net.h"
#include "src/fault/fault_injector.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"

namespace gvm {

using SiteId = int;

class DsmCluster;

// One machine in the cluster: its own physical memory, MMU, PVM and Nucleus.
class DsmSite {
 public:
  DsmSite(DsmCluster& cluster, SiteId id, size_t frames, size_t page_size);
  ~DsmSite();

  SiteId id() const { return id_; }
  Nucleus& nucleus() { return *nucleus_; }
  PagedVm& vm() { return *vm_; }
  Actor& actor() { return *actor_; }

  // Map a shared segment into this site's actor.
  Result<Region*> MapShared(const std::string& segment_name, Vaddr va, uint64_t size,
                            Prot prot);

  // Push every dirty shared page home through the protocol.  While a link is
  // down, writebacks fail and the PVM trips the cache into degraded mode
  // (writes refused so dirty data cannot silently accumulate); after the
  // network heals, one successful sync clears that state — the site-level
  // "recover after the partition" step.
  [[nodiscard]] Status SyncShared();

  // Typed accessors against the site's actor (the "application").
  [[nodiscard]] Status Read(Vaddr va, void* buffer, size_t size) { return actor_->Read(va, buffer, size); }
  [[nodiscard]] Status Write(Vaddr va, const void* buffer, size_t size) {
    return actor_->Write(va, buffer, size);
  }
  template <typename T>
  Result<T> Load(Vaddr va) {
    T value{};
    Status s = Read(va, &value, sizeof(T));
    if (s != Status::kOk) {
      return s;
    }
    return value;
  }
  template <typename T>
  [[nodiscard]] Status Store(Vaddr va, T value) {
    return Write(va, &value, sizeof(T));
  }

 private:
  friend class DsmCluster;
  friend class CoherentMapper;

  DsmCluster& cluster_;
  SiteId id_;
  std::unique_ptr<PhysicalMemory> memory_;
  std::unique_ptr<SoftMmu> mmu_;
  std::unique_ptr<PagedVm> vm_;
  std::unique_ptr<Nucleus> nucleus_;
  std::unique_ptr<SwapMapper> swap_;
  std::unique_ptr<MapperServer> swap_server_;
  std::unique_ptr<class CoherentMapper> coherent_;
  std::unique_ptr<MapperServer> coherent_server_;
  Actor* actor_ = nullptr;
  // Shared-segment key -> the site's local cache (held referenced while mapped).
  std::map<uint64_t, Cache*> shared_caches_;
};

// The home directory of the shared segments: per-page owner and sharer bitmap,
// plus the authoritative bytes.  Plays the role of Li & Hudak's manager, but
// reached only through SimNet messages and journaling every transition.
class DsmCluster {
 public:
  struct Stats {
    uint64_t read_faults = 0;        // pages served to readers
    uint64_t write_grants = 0;       // ownership transfers
    uint64_t invalidations = 0;      // remote copies invalidated (pages)
    uint64_t recalls = 0;            // dirty ranges recalled from an owner
    uint64_t network_messages = 0;   // simulated protocol messages delivered
    uint64_t network_bytes = 0;      // simulated wire bytes for those messages
    uint64_t network_drops = 0;      // delivery attempts lost in transit
    uint64_t network_retransmits = 0;  // extra attempts forced by loss
    uint64_t dedup_replays = 0;      // acks replayed from the dedup cache
    uint64_t recall_messages = 0;    // batched kRecall messages sent
    uint64_t invalidate_messages = 0;  // batched kInvalidate messages sent
    uint64_t wal_records = 0;        // directory WAL records appended
    uint64_t writebacks_rejected = 0;  // writebacks refused (not the owner)
    uint64_t transitions_aborted = 0;  // range transitions undone (net/death)
    uint64_t site_crashes = 0;
    uint64_t site_recoveries = 0;
    uint64_t pending_grants_recorded = 0;  // grants parked by a target's death
    uint64_t pending_grants_drained = 0;   // grants drained at SiteRecovered
  };

  explicit DsmCluster(size_t page_size);
  ~DsmCluster();

  DsmSite* AddSite(size_t frames = 256);
  DsmSite* site(SiteId id) { return sites_[id].get(); }
  size_t SiteCount() const { return sites_.size(); }

  // Create a shared segment of `size` bytes, initially zero.
  [[nodiscard]] Status CreateSharedSegment(const std::string& name, uint64_t size);

  // Snapshot of the protocol counters (safe to call concurrently with traffic).
  Stats stats() const GVM_EXCLUDES(dir_mu_);
  size_t page_size() const { return page_size_; }

  // The simulated interconnect: tests drive partitions, link policies and
  // seeded loss through it directly.
  SimNet& net() { return net_; }

  // Arms kNetDeliver/kNetPartition on the net and kCrashSite* in the sites'
  // protocol handlers.  Null disarms; the injector must outlive the cluster.
  void BindFaultInjector(FaultInjector* injector);

  // --- cross-site crash recovery -------------------------------------------
  //
  // CrashSite models the whole machine dying: its cached (and uncommitted
  // dirty) pages are lost, its node drops off the net, and the directory
  // clears its owner/sharer bits — the home's last *committed* bytes stay
  // authoritative.  Grants that were in flight toward the dead site are
  // parked.  RecoverSite re-joins the node and sends kSiteRecovered to the
  // home, which drains the parked grants exactly once (the drained count comes
  // back; a second recovery without a new crash drains zero).
  [[nodiscard]] Status CrashSite(SiteId site) GVM_EXCLUDES(dir_mu_);
  Result<uint64_t> RecoverSite(SiteId site) GVM_EXCLUDES(dir_mu_);
  bool SiteCrashed(SiteId site) const GVM_EXCLUDES(dir_mu_);

  // --- shadow oracle --------------------------------------------------------
  //
  // Verifies, on a quiesced cluster, that (a) every page satisfies the
  // single-writer invariant (an owned page has no sharers), (b) only live
  // sites appear in the directory, (c) no transition latch is stuck, and
  // (d) replaying the WAL from empty reproduces exactly the live directory
  // state *and* the authoritative bytes — i.e. no committed store was lost
  // and no uncommitted store leaked in.  Returns kOk or fills *diagnostic.
  [[nodiscard]] Status OracleCheck(std::string* diagnostic = nullptr) GVM_EXCLUDES(dir_mu_);

  uint64_t WalRecordCount() const GVM_EXCLUDES(wal_mu_);

  // Introspection for tests: current owner of a page (-1 if none) and reader set.
  SiteId OwnerOf(const std::string& name, SegOffset page_offset) GVM_EXCLUDES(dir_mu_);
  std::set<SiteId> ReadersOf(const std::string& name, SegOffset page_offset)
      GVM_EXCLUDES(dir_mu_);

 private:
  friend class DsmSite;
  friend class CoherentMapper;

  // Per-page directory line.  Sharers are a bitmap (site ids are dense and
  // small); `busy` latches the page while a range transition is in flight so
  // conflicting transitions serialize without holding dir_mu_ across sends.
  struct PageDir {
    SiteId owner = -1;       // site with write access, or -1
    uint64_t sharers = 0;    // bitmap of sites holding read-only copies
    bool busy = false;
  };
  struct Segment {
    uint64_t key = 0;
    uint64_t size = 0;
    std::map<SegOffset, std::vector<std::byte>> data;  // authoritative bytes
    std::map<SegOffset, PageDir> pages;
  };
  // One batched home->site control message: a contiguous page range.
  struct RangeOp {
    SiteId target = -1;
    SegOffset offset = 0;
    uint64_t size = 0;
    bool recall = false;  // recall (sync + demote) vs plain invalidate
  };
  // A write grant parked because its target site died mid-transition.
  struct PendingGrant {
    uint64_t key = 0;
    SegOffset offset = 0;
    uint64_t size = 0;
  };

  static uint64_t SiteBit(SiteId site) { return 1ull << site; }

  Segment* FindSegment(uint64_t key) GVM_REQUIRES(dir_mu_);
  Result<uint64_t> LookupSegment(const std::string& name) GVM_EXCLUDES(dir_mu_);

  // Directory entry points (run in the home node's net handler, no locks held).
  [[nodiscard]] Status DirectoryRead(SiteId reader, uint64_t key, SegOffset offset, size_t size,
                       std::vector<std::byte>* out) GVM_EXCLUDES(dir_mu_);
  [[nodiscard]] Status DirectoryWriteBack(SiteId writer, uint64_t key, SegOffset offset,
                            const std::byte* data, size_t size) GVM_EXCLUDES(dir_mu_);
  [[nodiscard]] Status DirectoryAcquireWrite(SiteId writer, uint64_t key, SegOffset offset,
                               size_t size) GVM_EXCLUDES(dir_mu_);
  Prot DirectoryFillProt(SiteId reader, uint64_t key, SegOffset offset)
      GVM_EXCLUDES(dir_mu_);
  uint64_t DirectorySiteRecovered(SiteId site) GVM_EXCLUDES(dir_mu_);

  // Latch [offset, offset+size) of `segment` busy (waiting out conflicting
  // transitions), collect the batched recalls/invalidates the transition
  // needs, and return the page-aligned range.  dir_mu_ is held on entry and
  // exit; the latch protects the range after dir_mu_ drops.  Returns kBusy if
  // a conflicting transition outlasts the deadline (cross-site deadlock
  // avoidance: the aborted waiter unwinds a fill the latch holder may be
  // blocked on).
  [[nodiscard]] Status LatchRange(Segment* segment, SegOffset offset, size_t size,
                    SegOffset* first, SegOffset* end) GVM_REQUIRES(dir_mu_);
  void UnlatchRange(Segment* segment, SegOffset first, SegOffset end)
      GVM_REQUIRES(dir_mu_);
  // Group the recalls/invalidates a transition needs into one RangeOp per
  // (site, contiguous page run) — the "one message per region op" batching.
  std::vector<RangeOp> PlanEvictions(Segment* segment, SegOffset first, SegOffset end,
                                     SiteId except, bool want_exclusive)
      GVM_REQUIRES(dir_mu_);
  // Send one batched control message; returns the remote status.
  [[nodiscard]] Status SendRangeOp(uint64_t key, const RangeOp& op) GVM_EXCLUDES(dir_mu_);

  // Site-node handler bodies (run on the delivering thread, no locks held).
  void HandleSiteMessage(DsmSite* site, const NetMessage& request, NetMessage* reply);
  void HandleHomeMessage(const NetMessage& request, NetMessage* reply);

  // WAL: append a state record for one page (owner + sharers) or a data
  // record (committed page bytes).  Appends happen under dir_mu_; wal_mu_
  // (rank kClient) nests inside it.
  void WalAppendState(uint64_t key, SegOffset page, const PageDir& dir)
      GVM_REQUIRES(dir_mu_) GVM_EXCLUDES(wal_mu_);
  void WalAppendData(uint64_t key, SegOffset page, const std::byte* bytes,
                     size_t size) GVM_REQUIRES(dir_mu_) GVM_EXCLUDES(wal_mu_);
  void WalAppendEvent(uint8_t type, uint64_t site, uint64_t arg)
      GVM_EXCLUDES(wal_mu_);

  const size_t page_size_;
  SimNet net_;  // gvm-lint: allow(annotation-coverage): internally synchronized (SimNet::mu_)
  std::atomic<FaultInjector*> injector_{nullptr};

  // Topology is fixed at construction; per-site state synchronizes itself.
  std::vector<std::unique_ptr<DsmSite>> sites_;  // gvm-lint: allow(annotation-coverage): immutable after construction

  // The home directory proper.  Entered only from net-handler context (no
  // kernel lock held); never held across a network send — range transitions
  // drop it and rely on the per-page busy latch instead.
  mutable Mutex dir_mu_{Rank::kDsmDirectory, "DsmCluster::dir_mu_"};
  CondVar dir_cv_;  // signalled when a busy latch clears
  std::map<std::string, uint64_t> names_ GVM_GUARDED_BY(dir_mu_);
  std::map<uint64_t, Segment> segments_ GVM_GUARDED_BY(dir_mu_);
  uint64_t next_key_ GVM_GUARDED_BY(dir_mu_) = 1;
  uint64_t dead_sites_ GVM_GUARDED_BY(dir_mu_) = 0;  // bitmap
  std::map<SiteId, std::vector<PendingGrant>> pending_grants_ GVM_GUARDED_BY(dir_mu_);
  // Per-site teardown-in-progress bitmap.  CrashSite raises a site's bit for
  // the whole crash sequence (port death, cache wipe, directory scrub); the
  // home refuses kSiteRecovered while it is up, so a racing RecoverSite can
  // never clear the directory's death mark *before* the crash records it —
  // which would strand the site as directory-dead on a live network.
  std::atomic<uint64_t> crashing_sites_{0};

  // Directory write-ahead log (in-memory byte stream of checksummed records,
  // same format as the journaled swap mapper's store).
  mutable Mutex wal_mu_{Rank::kClient, "DsmCluster::wal_mu_"};
  std::vector<std::byte> wal_ GVM_GUARDED_BY(wal_mu_);
  uint64_t wal_seq_ GVM_GUARDED_BY(wal_mu_) = 0;

  // Protocol counters: plain atomics so handler threads bump them without a
  // lock and stats() can snapshot them concurrently.
  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> write_grants_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> recalls_{0};
  std::atomic<uint64_t> recall_messages_{0};
  std::atomic<uint64_t> invalidate_messages_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> writebacks_rejected_{0};
  std::atomic<uint64_t> transitions_aborted_{0};
  std::atomic<uint64_t> site_crashes_{0};
  std::atomic<uint64_t> site_recoveries_{0};
  std::atomic<uint64_t> pending_grants_recorded_{0};
  std::atomic<uint64_t> pending_grants_drained_{0};
};

}  // namespace gvm

#endif  // GVM_SRC_DSM_DSM_H_
