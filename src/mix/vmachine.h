// A tiny byte-code virtual machine: the "CPU" that MIX processes execute on.
//
// Every instruction fetch, load and store goes through the simulated MMU (via
// Actor::Fetch/Read/Write), so running programs generate genuine page-fault
// traffic — demand paging of text, zero-fill of stack and heap, copy-on-write
// after fork.  This is the substitute for user-mode execution on the Sun-3.
#ifndef GVM_SRC_MIX_VMACHINE_H_
#define GVM_SRC_MIX_VMACHINE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/hal/types.h"
#include "src/util/result.h"

namespace gvm {

// Instruction encoding: op(8) | ra(4) | rb(4) | imm(16, signed).
enum class VmOp : uint8_t {
  kHalt = 0,
  kLi,     // ra = imm (sign-extended)
  kLui,    // ra = (ra << 16) | (imm & 0xffff)
  kMov,    // ra = rb
  kAdd,    // ra += rb
  kSub,    // ra -= rb
  kMul,    // ra *= rb
  kAddi,   // ra += imm
  kLd,     // ra = mem64[rb + imm]
  kSt,     // mem64[rb + imm] = ra
  kLdb,    // ra = mem8[rb + imm]
  kStb,    // mem8[rb + imm] = ra
  kJmp,    // pc += imm * 4 (relative to the next instruction)
  kBeqz,   // if (ra == 0) pc += imm * 4
  kBnez,   // if (ra != 0) pc += imm * 4
  kBlt,    // if (ra < rb) pc += imm * 4 (signed)
  kSys,    // system call #imm (see VmSys)
};

enum class VmSys : uint16_t {
  kExit = 1,    // status in r0
  kWrite = 2,   // console write: address in r0, length in r1
  kGetPid = 3,  // r0 = pid
  kFork = 4,    // r0 = child pid (parent) / 0 (child)
  kYield = 5,   // give up the CPU slice
  kSbrk = 6,    // r0 = old break; grows the data region by r0 bytes
};

constexpr uint32_t VmEncode(VmOp op, unsigned ra = 0, unsigned rb = 0, int16_t imm = 0) {
  return (static_cast<uint32_t>(op) << 24) | ((ra & 0xF) << 20) | ((rb & 0xF) << 16) |
         (static_cast<uint16_t>(imm));
}

struct VmDecoded {
  VmOp op;
  unsigned ra;
  unsigned rb;
  int16_t imm;
};

constexpr VmDecoded VmDecode(uint32_t word) {
  return VmDecoded{
      .op = static_cast<VmOp>(word >> 24),
      .ra = (word >> 20) & 0xF,
      .rb = (word >> 16) & 0xF,
      .imm = static_cast<int16_t>(word & 0xFFFF),
  };
}

// Architectural state of one MIX thread.
struct VmState {
  std::array<int64_t, 16> regs{};
  Vaddr pc = 0;
  bool halted = false;
  int exit_status = 0;
};

// Why the interpreter stopped.
enum class VmStop {
  kHalted,      // HALT or exit()
  kOutOfSlice,  // step budget exhausted (still runnable)
  kSyscall,     // a syscall needing the process manager (fork) is pending
  kFault,       // unrecoverable memory fault
};

// A small assembler for building program images in tests and examples.
class VmAssembler {
 public:
  VmAssembler& Emit(VmOp op, unsigned ra = 0, unsigned rb = 0, int16_t imm = 0) {
    words_.push_back(VmEncode(op, ra, rb, imm));
    return *this;
  }
  // Position for branch fix-ups (instruction index).
  size_t Here() const { return words_.size(); }
  // Patch the imm field of the branch at `at` to target instruction index `to`.
  void PatchBranch(size_t at, size_t to) {
    int32_t delta = static_cast<int32_t>(to) - static_cast<int32_t>(at) - 1;
    words_[at] = (words_[at] & 0xFFFF0000u) | (static_cast<uint16_t>(delta));
  }
  // Load a full 32-bit constant (two instructions).
  VmAssembler& Li32(unsigned ra, uint32_t value) {
    Emit(VmOp::kLi, ra, 0, static_cast<int16_t>(value >> 16));
    Emit(VmOp::kLui, ra, 0, static_cast<int16_t>(value & 0xFFFF));
    return *this;
  }
  const std::vector<uint32_t>& words() const { return words_; }
  std::vector<std::byte> Bytes() const {
    std::vector<std::byte> bytes(words_.size() * 4);
    for (size_t i = 0; i < words_.size(); ++i) {
      uint32_t w = words_[i];
      bytes[i * 4 + 0] = static_cast<std::byte>(w & 0xFF);
      bytes[i * 4 + 1] = static_cast<std::byte>((w >> 8) & 0xFF);
      bytes[i * 4 + 2] = static_cast<std::byte>((w >> 16) & 0xFF);
      bytes[i * 4 + 3] = static_cast<std::byte>((w >> 24) & 0xFF);
    }
    return bytes;
  }

 private:
  std::vector<uint32_t> words_;
};

}  // namespace gvm

#endif  // GVM_SRC_MIX_VMACHINE_H_
