#include "src/mix/process_manager.h"

#include <cassert>
#include <cstring>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

namespace {
size_t PageSize(Nucleus& nucleus) { return nucleus.cpu().memory().page_size(); }
}  // namespace

ProcessManager::ProcessManager(Nucleus& nucleus, FileMapper& filesystem,
                               PortId filesystem_port)
    : nucleus_(nucleus), filesystem_(filesystem), filesystem_port_(filesystem_port) {}

Status ProcessManager::InstallProgram(const std::string& path, const VmAssembler& text,
                                      const std::vector<std::byte>& data,
                                      uint64_t data_reserve, uint64_t stack_bytes) {
  const size_t page = PageSize(nucleus_);
  std::vector<std::byte> text_bytes = text.Bytes();
  ProgramHeader header;
  header.text_bytes = text_bytes.size();
  header.data_bytes = data.size();
  header.data_reserve = std::max<uint64_t>(data_reserve, AlignUp(data.size(), page));
  if (header.data_reserve == 0) {
    header.data_reserve = page;
  }
  header.stack_bytes = stack_bytes == 0 ? 4 * page : AlignUp(stack_bytes, page);
  header.entry = 0;

  // Image layout: [header page][text pages][data pages].
  std::vector<std::byte> image(page + AlignUp(text_bytes.size(), page) +
                               AlignUp(data.size(), page));
  std::memcpy(image.data(), &header, sizeof(header));
  if (!text_bytes.empty()) {
    std::memcpy(image.data() + page, text_bytes.data(), text_bytes.size());
  }
  if (!data.empty()) {
    std::memcpy(image.data() + page + AlignUp(text_bytes.size(), page), data.data(),
                data.size());
  }
  Result<uint64_t> key = filesystem_.CreateFile(path, image.data(), image.size());
  return key.ok() ? Status::kOk : key.status();
}

Result<ProgramHeader> ProcessManager::ReadHeader(const Capability& image) {
  // Read the header through the unified cache (and keep the cache warm for the
  // subsequent rgnMap — segment caching at work).
  Result<Cache*> cache = nucleus_.segment_manager().AcquireCache(image);
  if (!cache.ok()) {
    return cache.status();
  }
  ProgramHeader header;
  Status s = (*cache)->Read(0, &header, sizeof(header));
  nucleus_.segment_manager().Release(*cache);
  if (s != Status::kOk) {
    return s;
  }
  if (header.magic != ProgramHeader::kMagic) {
    return Status::kInvalidArgument;
  }
  return header;
}

Status ProcessManager::SetUpAddressSpace(Process& proc, const std::string& path) {
  const size_t page = PageSize(nucleus_);
  Result<uint64_t> key = filesystem_.LookupFile(path);
  if (!key.ok()) {
    return key.status();
  }
  Capability image{filesystem_port_, *key};
  Result<ProgramHeader> header = ReadHeader(image);
  if (!header.ok()) {
    return header.status();
  }

  // "The Unix exec invokes the Chorus rgnMap operation to map the text segment of
  // the process, rgnInit for its data segment, and rgnAllocate for the stack."
  const SegOffset text_offset = page;  // text follows the header page
  const uint64_t text_size = AlignUp(header->text_bytes, page);
  Result<Region*> text = proc.actor->RgnMap(ProcessLayout::kTextBase, text_size,
                                            Prot::kReadExecute, image, text_offset);
  if (!text.ok()) {
    return text.status();
  }

  const uint64_t data_size = AlignUp(header->data_reserve, page);
  const SegOffset data_offset = text_offset + text_size;
  // rgnInit: the data region starts as a (deferred) copy of the initialized data
  // image; the tail beyond the image is demand-zero.
  Result<Region*> data =
      proc.actor->RgnInit(ProcessLayout::kDataBase, data_size, Prot::kReadWrite, image,
                          data_offset, CopyPolicy::kAuto);
  if (!data.ok()) {
    return data.status();
  }
  // The initializer covers only data_bytes; the copy covered the whole region, so
  // zero the tail of the last initialized page if the image is smaller.
  // (The simple image format rounds data to pages, so nothing to do here.)

  Result<Region*> stack = proc.actor->RgnAllocate(
      ProcessLayout::kStackBase, AlignUp(header->stack_bytes, page), Prot::kReadWrite);
  if (!stack.ok()) {
    return stack.status();
  }

  proc.program = path;
  proc.data_reserve = data_size;
  proc.data_break = AlignUp(header->data_bytes, page);
  proc.stack_bytes = AlignUp(header->stack_bytes, page);
  proc.vm = VmState{};
  proc.vm.pc = ProcessLayout::kTextBase + header->entry;
  proc.vm.regs[15] = ProcessLayout::kStackBase + proc.stack_bytes;  // r15 = sp
  return Status::kOk;
}

Result<Pid> ProcessManager::Spawn(const std::string& path) {
  Result<Actor*> actor = nucleus_.ActorCreate("pid" + std::to_string(next_pid_));
  if (!actor.ok()) {
    return actor.status();
  }
  auto proc = std::make_unique<Process>();
  proc->pid = next_pid_++;
  proc->actor = *actor;
  Status s = SetUpAddressSpace(*proc, path);
  if (s != Status::kOk) {
    (void)nucleus_.ActorDestroy(*actor);
    return s;
  }
  Pid pid = proc->pid;
  processes_.emplace(pid, std::move(proc));
  return pid;
}

Result<Pid> ProcessManager::Fork(Pid parent_pid, CopyPolicy policy) {
  Process* parent = Find(parent_pid);
  if (parent == nullptr || parent->state != ProcState::kRunnable) {
    return Status::kNotFound;
  }
  Result<Actor*> actor = nucleus_.ActorCreate("pid" + std::to_string(next_pid_));
  if (!actor.ok()) {
    return actor.status();
  }
  auto child = std::make_unique<Process>();
  child->pid = next_pid_++;
  child->parent = parent_pid;
  child->program = parent->program;
  child->actor = *actor;

  // "A Unix fork uses rgnMapFromActor to share the text segment between the
  // parent and child processes.  It invokes rgnInitFromActor to create the
  // child's data and stack areas as copies of the parent's."
  const auto regions = parent->actor->context().GetRegionList();
  for (const RegionStatus& region : regions) {
    Result<Region*> created = Status::kInvalidArgument;
    if (region.address == ProcessLayout::kTextBase) {
      created = child->actor->RgnMapFromActor(region.address, region.size, region.protection,
                                              *parent->actor, region.address);
    } else {
      created = child->actor->RgnInitFromActor(region.address, region.size,
                                               region.protection, *parent->actor,
                                               region.address, policy);
    }
    if (!created.ok()) {
      (void)nucleus_.ActorDestroy(*actor);
      return created.status();
    }
  }
  child->vm = parent->vm;  // registers, pc — the child resumes at the same point
  child->data_reserve = parent->data_reserve;
  child->data_break = parent->data_break;
  child->stack_bytes = parent->stack_bytes;
  Pid pid = child->pid;
  processes_.emplace(pid, std::move(child));
  return pid;
}

Status ProcessManager::Exec(Pid pid, const std::string& path) {
  Process* proc = Find(pid);
  if (proc == nullptr) {
    return Status::kNotFound;
  }
  // Tear down the old image, build the new one (the console and pid survive).
  GVM_RETURN_IF_ERROR(proc->actor->RgnFreeAll());
  return SetUpAddressSpace(*proc, path);
}

Status ProcessManager::Exit(Pid pid, int status) {
  Process* proc = Find(pid);
  if (proc == nullptr) {
    return Status::kNotFound;
  }
  proc->state = ProcState::kZombie;
  proc->vm.halted = true;
  proc->vm.exit_status = status;
  // Release the address space now; the zombie only keeps its status.
  GVM_RETURN_IF_ERROR(nucleus_.ActorDestroy(proc->actor));
  proc->actor = nullptr;
  return Status::kOk;
}

Result<std::pair<Pid, int>> ProcessManager::Wait(Pid parent) {
  for (auto& [pid, proc] : processes_) {
    if (proc->parent == parent && proc->state == ProcState::kZombie) {
      std::pair<Pid, int> result{pid, proc->vm.exit_status};
      processes_.erase(pid);
      return result;
    }
  }
  return Status::kNotFound;  // no zombie children (a real kernel would block)
}

Process* ProcessManager::Find(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

size_t ProcessManager::RunnableCount() const {
  size_t n = 0;
  for (const auto& [pid, proc] : processes_) {
    n += proc->state == ProcState::kRunnable ? 1 : 0;
  }
  return n;
}

Result<VmStop> ProcessManager::Step(Process& proc) {
  VmState& vm = proc.vm;
  uint32_t word = 0;
  Status fetched = proc.actor->Fetch(vm.pc, &word, sizeof(word));
  if (fetched != Status::kOk) {
    GVM_LOG(Info) << "pid " << proc.pid << ": fetch fault at pc=0x" << std::hex << vm.pc;
    return VmStop::kFault;
  }
  const VmDecoded insn = VmDecode(word);
  vm.pc += 4;
  ++proc.steps_executed;
  auto& r = vm.regs;
  switch (insn.op) {
    case VmOp::kHalt:
      vm.halted = true;
      return VmStop::kHalted;
    case VmOp::kLi:
      r[insn.ra] = insn.imm;
      break;
    case VmOp::kLui:
      r[insn.ra] = (r[insn.ra] << 16) | (static_cast<uint16_t>(insn.imm));
      break;
    case VmOp::kMov:
      r[insn.ra] = r[insn.rb];
      break;
    case VmOp::kAdd:
      r[insn.ra] += r[insn.rb];
      break;
    case VmOp::kSub:
      r[insn.ra] -= r[insn.rb];
      break;
    case VmOp::kMul:
      r[insn.ra] *= r[insn.rb];
      break;
    case VmOp::kAddi:
      r[insn.ra] += insn.imm;
      break;
    case VmOp::kLd: {
      int64_t value = 0;
      Status s = proc.actor->Read(static_cast<Vaddr>(r[insn.rb] + insn.imm), &value,
                                  sizeof(value));
      if (s != Status::kOk) {
        return VmStop::kFault;
      }
      r[insn.ra] = value;
      break;
    }
    case VmOp::kSt: {
      int64_t value = r[insn.ra];
      Status s = proc.actor->Write(static_cast<Vaddr>(r[insn.rb] + insn.imm), &value,
                                   sizeof(value));
      if (s != Status::kOk) {
        return VmStop::kFault;
      }
      break;
    }
    case VmOp::kLdb: {
      uint8_t value = 0;
      Status s =
          proc.actor->Read(static_cast<Vaddr>(r[insn.rb] + insn.imm), &value, sizeof(value));
      if (s != Status::kOk) {
        return VmStop::kFault;
      }
      r[insn.ra] = value;
      break;
    }
    case VmOp::kStb: {
      uint8_t value = static_cast<uint8_t>(r[insn.ra]);
      Status s = proc.actor->Write(static_cast<Vaddr>(r[insn.rb] + insn.imm), &value,
                                   sizeof(value));
      if (s != Status::kOk) {
        return VmStop::kFault;
      }
      break;
    }
    case VmOp::kJmp:
      vm.pc += static_cast<int64_t>(insn.imm) * 4;
      break;
    case VmOp::kBeqz:
      if (r[insn.ra] == 0) {
        vm.pc += static_cast<int64_t>(insn.imm) * 4;
      }
      break;
    case VmOp::kBnez:
      if (r[insn.ra] != 0) {
        vm.pc += static_cast<int64_t>(insn.imm) * 4;
      }
      break;
    case VmOp::kBlt:
      if (r[insn.ra] < r[insn.rb]) {
        vm.pc += static_cast<int64_t>(insn.imm) * 4;
      }
      break;
    case VmOp::kSys:
      switch (static_cast<VmSys>(static_cast<uint16_t>(insn.imm))) {
        case VmSys::kExit:
          (void)Exit(proc.pid, static_cast<int>(r[0]));
          return VmStop::kHalted;
        case VmSys::kWrite: {
          std::vector<char> buffer(static_cast<size_t>(r[1]));
          Status s = proc.actor->Read(static_cast<Vaddr>(r[0]), buffer.data(),
                                      buffer.size());
          if (s != Status::kOk) {
            return VmStop::kFault;
          }
          proc.console.append(buffer.data(), buffer.size());
          break;
        }
        case VmSys::kGetPid:
          r[0] = proc.pid;
          break;
        case VmSys::kFork: {
          Result<Pid> child = Fork(proc.pid);
          if (!child.ok()) {
            r[0] = -1;
            break;
          }
          // Parent sees the child pid; the child (whose registers were copied
          // before this assignment is visible to it) must see 0.
          Process* child_proc = Find(*child);
          child_proc->vm.regs[0] = 0;
          child_proc->vm.pc = vm.pc;  // resume after the SYS instruction
          r[0] = *child;
          break;
        }
        case VmSys::kYield:
          return VmStop::kOutOfSlice;
        case VmSys::kSbrk: {
          uint64_t old_break = proc.data_break;
          uint64_t want = proc.data_break + static_cast<uint64_t>(r[0]);
          if (want > proc.data_reserve) {
            r[0] = -1;
          } else {
            proc.data_break = want;
            r[0] = static_cast<int64_t>(ProcessLayout::kDataBase + old_break);
          }
          break;
        }
        default:
          return VmStop::kFault;
      }
      break;
    default:
      return VmStop::kFault;
  }
  return VmStop::kOutOfSlice;  // "keep going" marker; Run() interprets it
}

Result<VmStop> ProcessManager::Run(Pid pid, uint64_t max_steps) {
  Process* proc = Find(pid);
  if (proc == nullptr || proc->state != ProcState::kRunnable) {
    return Status::kNotFound;
  }
  for (uint64_t i = 0; i < max_steps; ++i) {
    Result<VmStop> stop = Step(*proc);
    if (!stop.ok()) {
      return stop;
    }
    if (*stop == VmStop::kHalted || *stop == VmStop::kFault) {
      return *stop;
    }
    if (*stop == VmStop::kOutOfSlice && proc->vm.halted) {
      return VmStop::kHalted;
    }
  }
  return VmStop::kOutOfSlice;
}

uint64_t ProcessManager::RunAll(uint64_t slice_steps, uint64_t budget_steps) {
  uint64_t executed = 0;
  while (executed < budget_steps) {
    bool any = false;
    // Collect pids first: Step() may create (fork) or erase (exit) processes.
    std::vector<Pid> pids;
    for (auto& [pid, proc] : processes_) {
      if (proc->state == ProcState::kRunnable) {
        pids.push_back(pid);
      }
    }
    for (Pid pid : pids) {
      Process* proc = Find(pid);
      if (proc == nullptr || proc->state != ProcState::kRunnable) {
        continue;
      }
      uint64_t before = proc->steps_executed;
      Result<VmStop> stop = Run(pid, slice_steps);
      executed += Find(pid) != nullptr ? Find(pid)->steps_executed - before : slice_steps;
      any = true;
      if (stop.ok() && *stop == VmStop::kFault) {
        (void)Exit(pid, -11);  // "SIGSEGV"
      }
    }
    if (!any) {
      break;
    }
  }
  return executed;
}

}  // namespace gvm
