// Chorus/MIX process manager (paper section 5.1.5): "Many of the functionalities
// of a standard Unix kernel are implemented by an actor, the process manager,
// which maps Unix process semantics onto the Chorus Nucleus objects.  A standard
// Unix process is implemented as a Chorus actor hosting a single thread."
//
// The exec/fork recipes are implemented verbatim:
//   * exec: rgnMap for the text segment, rgnInit for the data segment,
//     rgnAllocate for the stack;
//   * fork: rgnMapFromActor shares the text; rgnInitFromActor creates the child's
//     data and stack as (deferred) copies of the parent's.
#ifndef GVM_SRC_MIX_PROCESS_MANAGER_H_
#define GVM_SRC_MIX_PROCESS_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mix/vmachine.h"
#include "src/nucleus/nucleus.h"

namespace gvm {

using Pid = int32_t;

// The on-"disk" program image format: one header page, then text pages, then the
// data-segment initializer pages.
struct ProgramHeader {
  static constexpr uint64_t kMagic = 0x58494d2d73757268ull;  // "hurs-MIX"
  uint64_t magic = kMagic;
  uint64_t text_bytes = 0;
  uint64_t data_bytes = 0;   // initialized data image size
  uint64_t data_reserve = 0; // total data region size (>= data_bytes)
  uint64_t stack_bytes = 0;
  uint64_t entry = 0;        // entry offset within the text region
};

// Canonical process layout.
struct ProcessLayout {
  static constexpr Vaddr kTextBase = 0x0000000000400000ull;
  static constexpr Vaddr kDataBase = 0x0000000000600000ull;
  static constexpr Vaddr kStackBase = 0x000000007F000000ull;
};

enum class ProcState { kRunnable, kZombie };

struct Process {
  Pid pid = 0;
  Pid parent = 0;
  std::string program;
  Actor* actor = nullptr;
  VmState vm;
  ProcState state = ProcState::kRunnable;
  uint64_t data_reserve = 0;
  uint64_t data_break = 0;  // sbrk pointer within the data region
  uint64_t stack_bytes = 0;
  std::string console;      // bytes written via VmSys::kWrite
  uint64_t steps_executed = 0;
};

class ProcessManager {
 public:
  ProcessManager(Nucleus& nucleus, FileMapper& filesystem, PortId filesystem_port);

  // Build a program image and store it as a file (the "compiler + linker").
  [[nodiscard]] Status InstallProgram(const std::string& path, const VmAssembler& text,
                        const std::vector<std::byte>& data, uint64_t data_reserve,
                        uint64_t stack_bytes);

  // Spawn a fresh process running `path` (fork-less creation, like init).
  Result<Pid> Spawn(const std::string& path);

  // The Unix calls.
  Result<Pid> Fork(Pid parent, CopyPolicy policy = CopyPolicy::kHistory);
  [[nodiscard]] Status Exec(Pid pid, const std::string& path);
  [[nodiscard]] Status Exit(Pid pid, int status);
  // Reap a zombie child of `parent`; returns {pid, status}.
  Result<std::pair<Pid, int>> Wait(Pid parent);

  // Run one process for up to `max_steps` instructions.
  Result<VmStop> Run(Pid pid, uint64_t max_steps);
  // Round-robin all runnable processes until none remain or the budget is spent.
  // Returns the number of instructions executed.
  uint64_t RunAll(uint64_t slice_steps = 1000, uint64_t budget_steps = 10'000'000);

  Process* Find(Pid pid);
  size_t ProcessCount() const { return processes_.size(); }
  size_t RunnableCount() const;
  Nucleus& nucleus() { return nucleus_; }

 private:
  // One interpreter step; may set pending_fork_.
  Result<VmStop> Step(Process& proc);
  [[nodiscard]] Status SetUpAddressSpace(Process& proc, const std::string& path);
  Result<ProgramHeader> ReadHeader(const Capability& image);

  Nucleus& nucleus_;
  FileMapper& filesystem_;
  PortId filesystem_port_;
  Pid next_pid_ = 1;
  std::map<Pid, std::unique_ptr<Process>> processes_;
};

}  // namespace gvm

#endif  // GVM_SRC_MIX_PROCESS_MANAGER_H_
