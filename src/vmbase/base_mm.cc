#include "src/vmbase/base_mm.h"

#include <cassert>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

// ---------------------------------------------------------------------------
// RegionImpl
// ---------------------------------------------------------------------------

RegionImpl::RegionImpl(BaseMm& mm, ContextImpl& context, Vaddr start, uint64_t size, Prot prot,
                       Cache& cache, SegOffset offset)
    : mm_(mm),
      context_(context),
      start_(start),
      size_(size),
      prot_(prot),
      cache_(&cache),
      offset_(offset) {}

bool RegionImpl::VaOf(SegOffset seg_offset, Vaddr* out) const {
  if (seg_offset < offset_ || seg_offset >= offset_ + size_) {
    return false;
  }
  *out = start_ + (seg_offset - offset_);
  return true;
}

Result<Region*> RegionImpl::Split(uint64_t offset) {
  MutexLock lock(mm_.mu_);
  return mm_.SplitRegionLocked(*this, offset);
}

Status RegionImpl::SetProtection(Prot prot) {
  MutexLock lock(mm_.mu_);
  prot_ = prot;
  mm_.OnRegionProtection(*this);
  return Status::kOk;
}

Status RegionImpl::LockInMemory() {
  MutexLock lock(mm_.mu_);
  Status s = mm_.OnRegionLock(*this, lock);
  if (s == Status::kOk) {
    locked_ = true;
  }
  return s;
}

Status RegionImpl::Unlock() {
  MutexLock lock(mm_.mu_);
  if (!locked_) {
    return Status::kOk;
  }
  locked_ = false;
  return mm_.OnRegionUnlock(*this);
}

RegionStatus RegionImpl::GetStatus() const {
  return RegionStatus{
      .address = start_,
      .size = size_,
      .protection = prot_,
      .cache = cache_,
      .offset = offset_,
      .locked = locked_,
  };
}

Status RegionImpl::Destroy() {
  MutexLock lock(mm_.mu_);
  return mm_.DestroyRegionLocked(*this);
}

// ---------------------------------------------------------------------------
// ContextImpl
// ---------------------------------------------------------------------------

ContextImpl::ContextImpl(BaseMm& mm, AsId as) : mm_(mm), as_(as) {}

ContextImpl::~ContextImpl() = default;

std::vector<RegionStatus> ContextImpl::GetRegionList() const {
  MutexLock lock(mm_.mu_);
  std::vector<RegionStatus> list;
  list.reserve(regions_.size());
  for (const auto& [start, region] : regions_) {
    list.push_back(region->GetStatus());
  }
  return list;
}

RegionImpl* ContextImpl::FindRegionLocked(Vaddr va) {
  // regions_ is keyed by start address; the candidate is the last region whose
  // start is <= va (the paper's sorted-list search, with a tree instead).
  auto it = regions_.upper_bound(va);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  RegionImpl* region = it->second.get();
  return region->Contains(va) ? region : nullptr;
}

Result<Region*> ContextImpl::FindRegion(Vaddr va) {
  MutexLock lock(mm_.mu_);
  RegionImpl* region = FindRegionLocked(va);
  if (region == nullptr) {
    return Status::kNotFound;
  }
  return static_cast<Region*>(region);
}

void ContextImpl::Switch() {
  MutexLock lock(mm_.mu_);
  mm_.current_context_ = this;
}

Status ContextImpl::Destroy() {
  MutexLock lock(mm_.mu_);
  return mm_.DestroyContextLocked(*this);
}

// ---------------------------------------------------------------------------
// BaseMm
// ---------------------------------------------------------------------------

BaseMm::BaseMm(PhysicalMemory& memory, Mmu& mmu, bool enable_tlb, TlbMmu::FenceMode fence)
    : memory_(memory), tlb_mmu_(mmu, enable_tlb, fence), mmu_(tlb_mmu_), cpu_(memory, tlb_mmu_) {
  assert(memory.page_size() == mmu.page_size());
  cpu_.BindFaultHandler(this);
}

BaseMm::~BaseMm() = default;

Result<Context*> BaseMm::ContextCreate() {
  MutexLock lock(mu_);
  Result<AsId> as = mmu_.CreateAddressSpace();
  if (!as.ok()) {
    return as.status();
  }
  auto context = std::make_unique<ContextImpl>(*this, *as);
  Context* raw = context.get();
  contexts_.emplace(*as, std::move(context));
  return raw;
}

Result<Region*> BaseMm::RegionCreate(Context& context, Vaddr address, uint64_t size, Prot prot,
                                     Cache& cache, SegOffset offset) {
  const size_t page = page_size();
  if (size == 0 || !IsAligned(address, page) || !IsAligned(size, page) ||
      !IsAligned(offset, page)) {
    return Status::kInvalidArgument;
  }
  MutexLock lock(mu_);
  auto& impl = static_cast<ContextImpl&>(context);
  // Reject overlap with an existing region.
  auto next = impl.regions_.lower_bound(address);
  if (next != impl.regions_.end() && next->second->start() < address + size) {
    return Status::kAlreadyExists;
  }
  if (next != impl.regions_.begin()) {
    auto prev = std::prev(next);
    if (prev->second->end() > address) {
      return Status::kAlreadyExists;
    }
  }
  auto region = std::make_unique<RegionImpl>(*this, impl, address, size, prot, cache, offset);
  RegionImpl* raw = region.get();
  impl.regions_.emplace(address, std::move(region));
  OnRegionMapped(*raw, lock);
  return static_cast<Region*>(raw);
}

Status BaseMm::HandleFault(const PageFault& fault) {
  MutexLock lock(mu_);
  auto ctx_it = contexts_.find(fault.address_space);
  if (ctx_it == contexts_.end()) {
    return Status::kSegmentationFault;
  }
  RegionImpl* region = ctx_it->second->FindRegionLocked(fault.address);
  if (region == nullptr) {
    // Section 4.1.2: "If the region is not found, the PVM raises the
    // 'segmentation fault' exception."
    return Status::kSegmentationFault;
  }
  if (!ProtAllows(region->prot(), AccessProt(fault.access))) {
    return Status::kProtectionFault;
  }
  CountFault(fault);
  const Vaddr page_va = AlignDown(fault.address, page_size());
  const SegOffset page_offset = region->OffsetOf(page_va);
  // ResolveFault runs with the lock held; implementations that must upcall to a
  // segment driver release it internally (see PagedVm::PullInLocked).
  return ResolveFault(*region, fault, page_offset, lock);
}

RegionImpl* BaseMm::RelookupRegion(const PageFault& fault) {
  auto ctx_it = contexts_.find(fault.address_space);
  if (ctx_it == contexts_.end()) {
    return nullptr;
  }
  return ctx_it->second->FindRegionLocked(fault.address);
}

void BaseMm::CountFault(const PageFault& fault) {
  ++stats_.page_faults;
  if (fault.protection_violation) {
    ++stats_.protection_faults;
  }
}

Status BaseMm::DestroyContextLocked(ContextImpl& context) {
  // Destroy all regions first (unmaps resident pages), then the address space.
  // The whole teardown (process exit, exec replace) is one gathered shootdown:
  // condemning the address space up front folds every region's unmaps into a
  // single per-AS generation bump paid once at scope exit, with one fence.
  // Nothing in the region hooks drops the manager lock, which the gather
  // contract requires.
  TlbGatherScope gather(&tlb_mmu_);
  tlb_mmu_.GatherCondemnAddressSpace(context.as_);
  while (!context.regions_.empty()) {
    RegionImpl& region = *context.regions_.begin()->second;
    Status s = DestroyRegionLocked(region);
    if (s != Status::kOk) {
      return s;
    }
  }
  (void)mmu_.DestroyAddressSpace(context.as_);
  if (current_context_ == &context) {
    current_context_ = nullptr;
  }
  contexts_.erase(context.as_);  // deletes `context`
  return Status::kOk;
}

Status BaseMm::DestroyRegionLocked(RegionImpl& region) {
  if (region.locked()) {
    return Status::kLocked;
  }
  // Standalone region destroy pays one gathered shootdown; under an outer
  // gather (context teardown) this only nests.
  TlbGatherScope gather(&tlb_mmu_);
  OnRegionUnmapping(region);
  region.context_.regions_.erase(region.start());  // deletes `region`
  return Status::kOk;
}

Result<Region*> BaseMm::SplitRegionLocked(RegionImpl& region, uint64_t offset) {
  const size_t page = page_size();
  if (offset == 0 || offset >= region.size() || !IsAligned(offset, page)) {
    return Status::kInvalidArgument;
  }
  if (region.locked()) {
    return Status::kLocked;
  }
  ContextImpl& context = region.context_;
  auto second =
      std::make_unique<RegionImpl>(*this, context, region.start() + offset,
                                   region.size() - offset, region.prot(), region.cache(),
                                   region.offset() + offset);
  RegionImpl* raw = second.get();
  region.size_ = offset;
  context.regions_.emplace(raw->start(), std::move(second));
  // No MMU changes needed: both halves keep identical cache/protection state.
  // Subclasses migrate per-region bookkeeping and keep mapping counts balanced.
  OnRegionSplit(region, *raw);
  return static_cast<Region*>(raw);
}

size_t BaseMm::ContextCount() const {
  MutexLock lock(mu_);
  return contexts_.size();
}

}  // namespace gvm
