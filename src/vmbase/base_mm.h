// BaseMm: context/region machinery shared by the three GMI implementations.
//
// The paper's GMI operations on contexts and regions (Table 2) are policy-free —
// finding the region for a fault address, splitting, sorted region lists — so the
// PVM, the Mach-style shadow baseline and the minimal real-time MM share this code
// and differ only in cache implementation and fault resolution, which are the
// subclass hooks below.
//
// Locking: one manager-wide mutex (`mu_`, rank kMmManager, a TSA capability).
// Public GMI entry points and the fault handler acquire it; subclass hooks are
// called with it held (GVM_REQUIRES below, re-stated on every override since
// thread-safety attributes are not inherited).  Subclasses must release it —
// via the MutexLock they are handed — around upcalls to segment drivers.
#ifndef GVM_SRC_VMBASE_BASE_MM_H_
#define GVM_SRC_VMBASE_BASE_MM_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/gmi/memory_manager.h"
#include "src/hal/cpu.h"
#include "src/hal/mmu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/tlb.h"
#include "src/sync/annotated_mutex.h"

namespace gvm {

class BaseMm;

// Concrete Region shared by all managers.
class RegionImpl final : public Region {
 public:
  RegionImpl(BaseMm& mm, class ContextImpl& context, Vaddr start, uint64_t size, Prot prot,
             Cache& cache, SegOffset offset);

  Result<Region*> Split(uint64_t offset) override;
  [[nodiscard]] Status SetProtection(Prot prot) override;
  [[nodiscard]] Status LockInMemory() override;
  [[nodiscard]] Status Unlock() override;
  RegionStatus GetStatus() const override;
  [[nodiscard]] Status Destroy() override;

  // Accessors used by the managers (with the MM lock held).
  Vaddr start() const { return start_; }
  uint64_t size() const { return size_; }
  Vaddr end() const { return start_ + size_; }
  Prot prot() const { return prot_; }
  Cache& cache() const { return *cache_; }
  SegOffset offset() const { return offset_; }
  bool locked() const { return locked_; }
  ContextImpl& context() const { return context_; }

  bool Contains(Vaddr va) const { return va >= start_ && va < start_ + size_; }
  // Segment offset corresponding to a virtual address inside the region.
  SegOffset OffsetOf(Vaddr va) const { return offset_ + (va - start_); }
  // Virtual address corresponding to a segment offset, if the offset falls inside
  // the window this region maps.
  bool VaOf(SegOffset seg_offset, Vaddr* out) const;

 private:
  friend class BaseMm;

  // All mutable fields below are protected by mm_.mu_; the accessors above are
  // documented-discipline (annotating them would force REQUIRES onto every
  // const read path without adding real checking power — the writers all go
  // through BaseMm, which is annotated).
  BaseMm& mm_;
  ContextImpl& context_;
  Vaddr start_;
  uint64_t size_;
  Prot prot_;
  Cache* cache_;
  SegOffset offset_;
  bool locked_ = false;
};

// Concrete Context shared by all managers.
class ContextImpl final : public Context {
 public:
  ContextImpl(BaseMm& mm, AsId as);
  ~ContextImpl() override;

  std::vector<RegionStatus> GetRegionList() const override;
  Result<Region*> FindRegion(Vaddr va) override;
  void Switch() override;
  [[nodiscard]] Status Destroy() override;
  AsId address_space() const override { return as_; }

 private:
  friend class BaseMm;
  friend class RegionImpl;

  // Find with the MM lock already held.
  RegionImpl* FindRegionLocked(Vaddr va);

  BaseMm& mm_;
  AsId as_;
  // Regions sorted by start address (the paper's per-context sorted region
  // list).  Guarded by the manager-wide mutex; accessed via the BaseMm
  // friendship from annotated REQUIRES(mu_) code.
  std::map<Vaddr, std::unique_ptr<RegionImpl>> regions_;
};

class BaseMm : public MemoryManager {
 public:
  // The manager interposes a per-CPU software TLB (TlbMmu) between itself and
  // `mmu`: all translations and table mutations go through the TLB wrapper so
  // unmaps/downgrades are shot down before they are observable.  `enable_tlb`
  // false degrades the wrapper to pure delegation (for baselines and A/B runs).
  // `fence` selects the shootdown publication barrier (kAuto probes the host);
  // benchmarks sweep it to compare membarrier against per-read fences.
  BaseMm(PhysicalMemory& memory, Mmu& mmu, bool enable_tlb = true,
         TlbMmu::FenceMode fence = TlbMmu::FenceMode::kAuto);
  ~BaseMm() override;

  // ---- MemoryManager ----
  Result<Context*> ContextCreate() override GVM_EXCLUDES(mu_);
  Result<Region*> RegionCreate(Context& context, Vaddr address, uint64_t size, Prot prot,
                               Cache& cache, SegOffset offset) override GVM_EXCLUDES(mu_);
  void BindSegmentRegistry(SegmentRegistry* registry) override { registry_ = registry; }
  Cpu& cpu() override { return cpu_; }
  MmStats stats() const override GVM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() override GVM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    stats_ = MmStats{};
  }

  // ---- FaultHandler ----
  [[nodiscard]] Status HandleFault(const PageFault& fault) override GVM_EXCLUDES(mu_);

  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }
  Mmu& mmu() { return mmu_; }
  const Mmu& mmu() const { return mmu_; }
  // The software TLB fronting the hardware MMU (observability / benchmarks).
  TlbMmu& tlb() { return tlb_mmu_; }
  const TlbMmu& tlb() const { return tlb_mmu_; }
  size_t page_size() const { return memory_.page_size(); }

  // Number of live contexts (for leak checks in tests).
  size_t ContextCount() const GVM_EXCLUDES(mu_);

 protected:
  // ---- Subclass hooks (MM lock held unless noted) ----

  // Resolve one page fault: `page_offset` is the page-aligned offset of the fault
  // within the region's cache.  kOk means "mapping installed, retry the access".
  // `lock` is the guard HandleFault owns; implementations that must upcall to a
  // segment driver drop and retake it through `lock` (see PagedVm::PullInLocked).
  [[nodiscard]] virtual Status ResolveFault(RegionImpl& region, const PageFault& fault,
                              SegOffset page_offset, MutexLock& lock) GVM_REQUIRES(mu_) = 0;

  // A region was mapped over `cache` / is about to be unmapped.  Subclasses track
  // mapping counts and tear down MMU state for resident pages (O(resident), never
  // O(region size) — the size-independence property of section 4.1).
  // OnRegionMapped receives the caller's guard: the minimal MM eagerly loads
  // the region's pages, dropping the lock around each driver upcall.
  virtual void OnRegionMapped(RegionImpl& region, MutexLock& lock) GVM_REQUIRES(mu_) = 0;
  virtual void OnRegionUnmapping(RegionImpl& region) GVM_REQUIRES(mu_) = 0;

  // `first` was split; `second` is the new upper half.  Subclasses migrate their
  // per-region bookkeeping (mapped-page tables) for addresses now owned by `second`.
  virtual void OnRegionSplit(RegionImpl& first, RegionImpl& second) GVM_REQUIRES(mu_) = 0;

  // Apply a protection change to the pages of `region` currently in the MMU.
  virtual void OnRegionProtection(RegionImpl& region) GVM_REQUIRES(mu_) = 0;

  // Pin / unpin the region's pages (lockInMemory may need to fault pages in, so it
  // may release and retake the lock via `lock`).
  [[nodiscard]] virtual Status OnRegionLock(RegionImpl& region, MutexLock& lock) GVM_REQUIRES(mu_) = 0;
  [[nodiscard]] virtual Status OnRegionUnlock(RegionImpl& region) GVM_REQUIRES(mu_) = 0;

  // Re-derive the region for a fault after the lock was dropped (the region may
  // have been destroyed or replaced in the meantime).  Lock must be held.
  RegionImpl* RelookupRegion(const PageFault& fault) GVM_REQUIRES(mu_);

  SegmentRegistry* registry() { return registry_; }
  MmStats& mutable_stats() GVM_REQUIRES(mu_) { return stats_; }
  ContextImpl* current_context() GVM_REQUIRES(mu_) { return current_context_; }

  // Stats bump helpers used by subclasses.
  void CountFault(const PageFault& fault) GVM_REQUIRES(mu_);

  // The manager-wide mutex.  Protected (not private) so subclasses name it
  // directly in GUARDED_BY/REQUIRES annotations — TSA unifies the capability
  // expression `mu_` across BaseMm and its subclasses.
  mutable Mutex mu_{Rank::kMmManager, "BaseMm::mu_"};

 private:
  friend class ContextImpl;
  friend class RegionImpl;

  [[nodiscard]] Status DestroyContextLocked(ContextImpl& context) GVM_REQUIRES(mu_);
  [[nodiscard]] Status DestroyRegionLocked(RegionImpl& region) GVM_REQUIRES(mu_);
  Result<Region*> SplitRegionLocked(RegionImpl& region, uint64_t offset) GVM_REQUIRES(mu_);

  PhysicalMemory& memory_;
  TlbMmu tlb_mmu_;  // wraps the constructor's Mmu; declared before mmu_/cpu_ (gvm-lint: allow(annotation-coverage): internally synchronized)
  Mmu& mmu_;        // == tlb_mmu_: every manager MMU call goes through the TLB
  Cpu cpu_;  // gvm-lint: allow(annotation-coverage): internally synchronized (per-CPU state + TlbMmu)
  SegmentRegistry* registry_ = nullptr;  // gvm-lint: allow(annotation-coverage): bound once during single-threaded bring-up
  std::unordered_map<AsId, std::unique_ptr<ContextImpl>> contexts_ GVM_GUARDED_BY(mu_);
  ContextImpl* current_context_ GVM_GUARDED_BY(mu_) = nullptr;
  MmStats stats_ GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_VMBASE_BASE_MM_H_
