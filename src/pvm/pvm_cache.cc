// PvmCache: GMI cache entry points, delegating to the owning PagedVm under the
// manager-wide lock.
#include "src/pvm/pvm_cache.h"

#include <cassert>
#include <vector>

#include "src/pvm/paged_vm.h"

namespace gvm {

namespace {

// Debug-build audit: Status::kRetry is a private protocol between the PVM's
// internal loops ("the operation blocked; re-derive and re-drive") and must
// never be visible through a public GMI entry point.  Every public return that
// could carry an internal status funnels through here.
Status PublicStatus(Status s) {
  assert(s != Status::kRetry && "kRetry escaped a public GMI entry point");
  return s;
}

}  // namespace

PvmCache::PvmCache(PagedVm& vm, CacheId id, std::string name, SegmentDriver* driver,
                   bool temporary)
    : vm_(vm), id_(id), name_(std::move(name)), driver_(driver), temporary_(temporary) {}

PvmCache::~PvmCache() = default;

Status PvmCache::CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size,
                        CopyPolicy policy) {
  auto& dst_cache = static_cast<PvmCache&>(dst);
  assert(&dst_cache.vm_ == &vm_ && "copies must stay within one memory manager");
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CopyRange(lock, *this, src_offset, dst_cache, dst_offset, size,
                                    policy));
}

Status PvmCache::MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size) {
  auto& dst_cache = static_cast<PvmCache&>(dst);
  assert(&dst_cache.vm_ == &vm_);
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.MoveRange(lock, *this, src_offset, dst_cache, dst_offset, size));
}

Status PvmCache::Read(SegOffset offset, void* buffer, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheRead(lock, *this, offset, buffer, size));
}

Status PvmCache::Write(SegOffset offset, const void* buffer, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheWrite(lock, *this, offset, buffer, size));
}

Status PvmCache::Destroy() {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.DestroyCacheLocked(lock, *this));
}

Status PvmCache::FillUp(SegOffset offset, const void* data, size_t size, Prot max_prot) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheFillUp(lock, *this, offset, data, size, max_prot));
}

Status PvmCache::FillZero(SegOffset offset, size_t size) {
  // Zero-filled fill: equivalent to FillUp with a zero buffer, without the buffer.
  std::vector<std::byte> zeros(size);
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheFillUp(lock, *this, offset, zeros.data(), size, Prot::kAll));
}

Status PvmCache::CopyBack(SegOffset offset, void* buffer, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheCopyBack(lock, *this, offset, buffer, size, /*remove=*/false));
}

Status PvmCache::MoveBack(SegOffset offset, void* buffer, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheCopyBack(lock, *this, offset, buffer, size, /*remove=*/true));
}

Status PvmCache::Flush() {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheFlush(lock, *this, /*discard=*/true));
}

Status PvmCache::Sync() {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheFlush(lock, *this, /*discard=*/false));
}

Status PvmCache::Invalidate(SegOffset offset, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheInvalidate(lock, *this, offset, size));
}

Status PvmCache::SetProtection(SegOffset offset, size_t size, Prot max_prot) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheSetProtection(lock, *this, offset, size, max_prot));
}

Status PvmCache::LockInMemory(SegOffset offset, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheLockRange(lock, *this, offset, size, /*lock_pages=*/true));
}

Status PvmCache::Unlock(SegOffset offset, size_t size) {
  MutexLock lock(vm_.mu_);
  return PublicStatus(vm_.CacheLockRange(lock, *this, offset, size, /*lock_pages=*/false));
}

size_t PvmCache::ResidentPages() const {
  MutexLock lock(vm_.mu_);
  return pages_.size();
}

size_t PvmCache::MappingCount() const {
  MutexLock lock(vm_.mu_);
  return mapping_count_;
}

PvmCache* PvmCache::ParentAt(SegOffset offset) const {
  MutexLock lock(vm_.mu_);
  const auto* frag = parents_.Find(offset);
  return frag == nullptr ? nullptr : frag->value.cache;
}

PvmCache* PvmCache::HistoryAt(SegOffset offset) const {
  MutexLock lock(vm_.mu_);
  const auto* frag = histories_.Find(offset);
  return frag == nullptr ? nullptr : frag->value.cache;
}

bool PvmCache::degraded() const {
  MutexLock lock(vm_.mu_);
  return degraded_;
}

}  // namespace gvm
