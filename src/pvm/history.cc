// History-object deferred copy (paper section 4.2) and the other copy engines.
//
// The tree construction rules implemented here:
//   * A tree is rooted at the source of a copy; successive copies add new leaves.
//   * Shape invariant: each source of a copy operation has a single immediate
//     descendant, its history object (section 4.2.1).
//   * First copy of a fragment: the destination becomes the source's history.
//   * A later copy of an already-copied fragment inserts a *working object* (w1,
//     w2, ...) between the source and its previous descendants (section 4.2.3,
//     Figures 3.c/3.d).
//   * Fragments may have different, arbitrary parents (section 4.2.4); both the
//     parent and the history attribute are fragment lists.
#include <cassert>
#include <cstring>
#include <vector>

#include "src/pvm/paged_vm.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

Status PagedVm::CopyRange(MutexLock& lock, PvmCache& src, SegOffset src_off,
                          PvmCache& dst, SegOffset dst_off, size_t size, CopyPolicy policy) {
  if (size == 0) {
    return Status::kOk;
  }
  const size_t page = page_size();
  const bool aligned =
      IsAligned(src_off, page) && IsAligned(dst_off, page) && IsAligned(size, page);
  if (policy == CopyPolicy::kAuto) {
    if (!aligned) {
      policy = CopyPolicy::kEager;
    } else if (PagesFor(size, page) <= options_.per_page_threshold_pages) {
      policy = CopyPolicy::kPerPage;
    } else {
      policy = CopyPolicy::kHistory;
    }
  }
  if (policy == CopyPolicy::kEager) {
    return EagerCopy(lock, src, src_off, dst, dst_off, size);
  }
  if (!aligned) {
    return Status::kInvalidArgument;  // deferred techniques are page-granular
  }
  if (&src == &dst) {
    // Deferred self-copies would alias the tree; run them eagerly.
    return EagerCopy(lock, src, src_off, dst, dst_off, size);
  }
  switch (policy) {
    case CopyPolicy::kHistory:
      return HistoryCopy(lock, src, src_off, dst, dst_off, size, /*copy_on_reference=*/false);
    case CopyPolicy::kHistoryOnRef:
      return HistoryCopy(lock, src, src_off, dst, dst_off, size, /*copy_on_reference=*/true);
    case CopyPolicy::kPerPage:
      return PerPageCopy(lock, src, src_off, dst, dst_off, size);
    default:
      return Status::kInvalidArgument;
  }
}

// ---------------------------------------------------------------------------
// Destination preparation
// ---------------------------------------------------------------------------

Status PagedVm::SecureHistorySnapshots(MutexLock& lock, PvmCache& cache,
                                       SegOffset offset, size_t size) {
  // If `cache` is itself a copy source, its history object is owed the cache's
  // *current* values before they change wholesale.  We materialize them eagerly:
  // this only happens in the unusual "copy into / move out of a segment that has
  // itself been copied" pattern (see DESIGN.md), where correctness beats deferral.
  const size_t page = page_size();
  for (const auto& frag : cache.histories_.Overlapping(offset, size)) {
    PvmCache* history = frag.value.cache;
    for (SegOffset off = frag.start; off < frag.start + frag.size; off += page) {
      SegOffset h_off = frag.value.base + (off - frag.start);
      for (int rounds = 0;; ++rounds) {
        if (rounds > 4096) {
          return Status::kBusError;
        }
        MapEntry* h_entry = map_.Find(history->id(), PageIndex(h_off));
        if (h_entry != nullptr || history->pushed_pages_.contains(PageIndex(h_off))) {
          break;  // history already has its own version (or a stub defining one)
        }
        bool dropped = false;
        Result<PageDesc*> value = ResolveValue(lock, cache, off, &dropped);
        if (!value.ok()) {
          return value.status();
        }
        if (dropped) {
          continue;
        }
        PagePin value_pin(**value);
        Result<PageDesc*> copy = MaterializePage(lock, *history, h_off,
                                                 memory().FrameData((*value)->frame),
                                                 /*dirty=*/true, Prot::kAll);
        if (copy.ok()) {
          ++detail_.history_pushes;
          ++mutable_stats().cow_copies;
          break;
        }
        if (copy.status() != Status::kRetry) {
          return copy.status();
        }
      }
    }
  }
  return Status::kOk;
}

Status PagedVm::ClearDestinationRange(MutexLock& lock, PvmCache& dst,
                                      SegOffset dst_off, size_t size) {
  const size_t page = page_size();
  GVM_RETURN_IF_ERROR(SecureHistorySnapshots(lock, dst, dst_off, size));
  dst.histories_.Erase(dst_off, size);

  // Sever history links in *other* caches that point into the overwritten range:
  // dst's matching parent link to them disappears below, so the push obligation
  // disappears with it.  Leaving such links stale would let an old source push
  // originals into dst after the overwrite — corrupting the new copy.
  for (auto& [other_id, other] : caches_) {
    if (other.get() == &dst) {
      continue;
    }
    std::vector<std::pair<SegOffset, uint64_t>> stale;  // in `other`'s offsets
    other->histories_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (frag.value.cache != &dst) {
        return;
      }
      // frag maps other's [start, start+size) to dst's [base, base+size).
      SegOffset lo = frag.value.base > dst_off ? frag.value.base : dst_off;
      SegOffset hi_a = frag.value.base + frag.size;
      SegOffset hi_b = dst_off + size;
      SegOffset hi = hi_a < hi_b ? hi_a : hi_b;
      if (lo < hi) {
        stale.emplace_back(frag.start + (lo - frag.value.base), hi - lo);
      }
    });
    for (const auto& [start, len] : stale) {
      other->histories_.Erase(start, len);
    }
  }

  // Drop the destination's own state over the range: owned pages, stubs, any
  // stale pushed-out copies, and old parent links.
  for (SegOffset off = dst_off; off < dst_off + size; off += page) {
    // Per-page stubs elsewhere that source their value from this offset must be
    // given their snapshot before the value is overwritten.
    GVM_RETURN_IF_ERROR(MaterializeStubsOf(lock, dst, off));
    for (int rounds = 0;; ++rounds) {
      if (rounds > 4096) {
        return Status::kBusError;
      }
      MapEntry* entry = FindEntry(dst, off);
      if (entry == nullptr) {
        break;
      }
      if (entry->kind == MapEntry::Kind::kFrame) {
        if (entry->page->in_transit) {
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(dst, off), mu_);
          continue;
        }
        if (entry->page->pin_count > 0) {
          return Status::kLocked;
        }
        FreePage(entry->page);
        break;
      }
      if (entry->kind == MapEntry::Kind::kCowStub) {
        UnlinkStub(entry->cow.get());
        map_.Erase(dst.id(), PageIndex(off));
        break;
      }
      // Sync stub: a pull-in is in flight; wait for it, then clear.
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(dst, off), mu_);
    }
    dst.pushed_pages_.erase(PageIndex(off));
  }
  dst.parents_.Erase(dst_off, size);
  return Status::kOk;
}

void PagedVm::ProtectSourcePages(PvmCache& src, SegOffset src_off, size_t size) {
  // "All the pages of (the corresponding fragment of) the source are made
  // read-only" — O(resident pages), found through the global map.  This is the
  // fork/COW hot loop: gather the write-protect downgrades so the whole
  // fragment pays one shootdown fence instead of one per mapping.  Nothing in
  // the loop drops the manager lock or frees a frame.
  TlbGatherScope gather(&tlb());
  const size_t page = page_size();
  for (SegOffset off = src_off; off < src_off + size; off += page) {
    if (PageDesc* owned = FindOwned(src, off)) {
      WriteProtectPage(*owned);
      ++mutable_stats().deferred_copy_pages;
    }
  }
}

// ---------------------------------------------------------------------------
// History-object copy (section 4.2)
// ---------------------------------------------------------------------------

Status PagedVm::LinkCopy(MutexLock& lock, PvmCache& src, SegOffset src_off,
                         PvmCache& dst, SegOffset dst_off, size_t size, bool copy_on_reference) {
  (void)lock;
  // Walk the source range, alternating between sub-ranges that already have a
  // history (insert a working object) and ones that do not (direct link).
  SegOffset cur = src_off;
  const SegOffset end = src_off + size;
  while (cur < end) {
    const auto* frag = src.histories_.Find(cur);
    if (frag != nullptr) {
      // Figure 3.c: this sub-range was already copied once.  Insert a working
      // object `w` between src and its previous history H.
      const SegOffset seg_end = frag->end() < end ? frag->end() : end;
      const uint64_t len = seg_end - cur;
      PvmCache* old_history = frag->value.cache;
      const SegOffset h_base = frag->value.base + (cur - frag->start);

      Result<PvmCache*> working =
          CreateCacheLocked(nullptr, "w" + std::to_string(++working_counter_),
                            /*temporary=*/true);
      if (!working.ok()) {
        return working.status();
      }
      PvmCache* w = *working;
      ++detail_.working_objects;
      ++mutable_stats().history_objects;
      // w mirrors src's offsets for the covered range.
      w->parents_.Insert(cur, len, LinkTarget{&src, cur, false});
      // The old history H now reads through w instead of src for this range.
      for (const auto& h_frag : old_history->parents_.Overlapping(h_base, len)) {
        if (h_frag.value.cache == &src) {
          // Translate: H offsets -> src offsets == w offsets.
          old_history->parents_.Insert(h_frag.start, h_frag.size,
                                       LinkTarget{w, h_frag.value.base,
                                                  h_frag.value.copy_on_reference});
        }
      }
      // w's history is H: originals that src pushes down flow into w, and w's own
      // writes (there are none; w is MM-internal) would flow to H.
      w->histories_.Insert(cur, len, LinkTarget{old_history, h_base, false});
      // src's history for the range becomes w.
      src.histories_.Insert(cur, len, LinkTarget{w, cur, false});
      // The new copy reads through w.
      dst.parents_.Insert(dst_off + (cur - src_off), len,
                          LinkTarget{w, cur, copy_on_reference});
      cur = seg_end;
    } else {
      // Simple case (Figure 3.a): no history yet; dst becomes src's history.
      // Find where the direct sub-range ends (the next history fragment).
      SegOffset direct_end = end;
      for (const auto& next : src.histories_.Overlapping(cur, end - cur)) {
        // Find(cur) returned null, so the first overlapping fragment starts
        // strictly after cur.
        assert(next.start > cur);
        direct_end = next.start;
        break;
      }
      const uint64_t len = direct_end - cur;
      src.histories_.Insert(cur, len, LinkTarget{&dst, dst_off + (cur - src_off), false});
      dst.parents_.Insert(dst_off + (cur - src_off), len,
                          LinkTarget{&src, cur, copy_on_reference});
      cur = direct_end;
    }
  }
  return Status::kOk;
}

Status PagedVm::HistoryCopy(MutexLock& lock, PvmCache& src,
                            SegOffset src_off, PvmCache& dst, SegOffset dst_off, size_t size,
                            bool copy_on_reference) {
  GVM_RETURN_IF_ERROR(ClearDestinationRange(lock, dst, dst_off, size));
  GVM_RETURN_IF_ERROR(LinkCopy(lock, src, src_off, dst, dst_off, size, copy_on_reference));
  ProtectSourcePages(src, src_off, size);
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Per-virtual-page copy (section 4.3)
// ---------------------------------------------------------------------------

Status PagedVm::PerPageCopy(MutexLock& lock, PvmCache& src,
                            SegOffset src_off, PvmCache& dst, SegOffset dst_off, size_t size) {
  GVM_RETURN_IF_ERROR(ClearDestinationRange(lock, dst, dst_off, size));
  const size_t page = page_size();
  for (SegOffset delta = 0; delta < size; delta += page) {
    const SegOffset s_off = src_off + delta;
    const SegOffset d_off = dst_off + delta;
    for (int rounds = 0;; ++rounds) {
      if (rounds > 4096) {
        return Status::kBusError;
      }
      MapEntry* src_entry = FindEntry(src, s_off);
      auto stub = std::make_unique<CowStub>();
      stub->cache = &dst;
      stub->offset = d_off;
      if (src_entry == nullptr) {
        // Source page not resident: non-resident stub form; faults resolve it by
        // walking the source's tree (and re-thread once the page appears).
        stub->src_page = nullptr;
        stub->src_cache = &src;
        stub->src_offset = s_off;
      } else if (src_entry->kind == MapEntry::Kind::kFrame) {
        if (src_entry->page->in_transit) {
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(src, s_off), mu_);
          continue;
        }
        // "For each page of the source fragment present in real memory, the PVM
        // protects the page read-only."
        WriteProtectPage(*src_entry->page);
        stub->src_page = src_entry->page;
      } else if (src_entry->kind == MapEntry::Kind::kCowStub) {
        // The source's own value is a stub; share its source.
        const CowStub& chain = *src_entry->cow;
        stub->src_page = chain.src_page;
        stub->src_cache = chain.src_cache;
        stub->src_offset = chain.src_offset;
      } else {
        ++detail_.sync_stub_waits;
        sleepers_.Wait(StubKey(src, s_off), mu_);
        continue;
      }
      CowStub* raw = stub.get();
      map_.Insert(dst.id(), PageIndex(d_off),
                  MapEntry{.kind = MapEntry::Kind::kCowStub, .page = nullptr,
                           .cow = std::move(stub)});
      ThreadStub(raw);
      ++detail_.per_page_stubs;
      ++mutable_stats().deferred_copy_pages;
      break;
    }
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Eager copy and move
// ---------------------------------------------------------------------------

Status PagedVm::EagerCopy(MutexLock& lock, PvmCache& src, SegOffset src_off,
                          PvmCache& dst, SegOffset dst_off, size_t size) {
  const size_t page = page_size();
  if (&src == &dst && src_off < dst_off + size && dst_off < src_off + size) {
    // Overlapping self-copy: read the whole source range first (memmove
    // semantics), then write it back.
    std::vector<std::byte> whole(size);
    GVM_RETURN_IF_ERROR(CacheRead(lock, src, src_off, whole.data(), size));
    mutable_stats().eager_copy_pages += PagesFor(size, page);
    return CacheWrite(lock, dst, dst_off, whole.data(), size);
  }
  // Transfer through a bounce buffer, page-sized pieces, honouring faults on both
  // sides.  Handles arbitrary alignment.
  std::vector<std::byte> bounce(page);
  size_t done = 0;
  while (done < size) {
    const SegOffset s = src_off + done;
    const SegOffset d = dst_off + done;
    size_t chunk = page - (s % page);
    if (chunk > size - done) {
      chunk = size - done;
    }
    if (chunk > page - (d % page)) {
      chunk = page - (d % page);
    }
    GVM_RETURN_IF_ERROR(CacheRead(lock, src, s, bounce.data(), chunk));
    GVM_RETURN_IF_ERROR(CacheWrite(lock, dst, d, bounce.data(), chunk));
    done += chunk;
    ++mutable_stats().eager_copy_pages;
  }
  return Status::kOk;
}

Status PagedVm::MoveRange(MutexLock& lock, PvmCache& src, SegOffset src_off,
                          PvmCache& dst, SegOffset dst_off, size_t size) {
  const size_t page = page_size();
  if (!IsAligned(src_off, page) || !IsAligned(dst_off, page) || !IsAligned(size, page)) {
    return Status::kInvalidArgument;
  }
  if (&src == &dst) {
    return Status::kInvalidArgument;
  }
  // The source's contents become undefined: any history object depending on the
  // source must first be made self-sufficient for the range.
  GVM_RETURN_IF_ERROR(SecureHistorySnapshots(lock, src, src_off, size));
  src.histories_.Erase(src_off, size);
  GVM_RETURN_IF_ERROR(ClearDestinationRange(lock, dst, dst_off, size));
  for (SegOffset delta = 0; delta < size; delta += page) {
    const SegOffset s_off = src_off + delta;
    const SegOffset d_off = dst_off + delta;
    // The source's value at this offset becomes undefined: satisfy any per-page
    // stubs that still source from it.
    GVM_RETURN_IF_ERROR(MaterializeStubsOf(lock, src, s_off));
    for (int rounds = 0;; ++rounds) {
      if (rounds > 4096) {
        return Status::kBusError;
      }
      MapEntry* entry = FindEntry(src, s_off);
      if (entry != nullptr && entry->kind == MapEntry::Kind::kFrame) {
        PageDesc* moving = entry->page;
        if (moving->in_transit) {
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(src, s_off), mu_);
          continue;
        }
        if (moving->pin_count > 0) {
          return Status::kLocked;
        }
        // The source may owe its history the original before the page leaves.
        bool dropped = false;
        Status pushed = PushToHistory(lock, src, *moving, &dropped);
        if (pushed == Status::kRetry) {
          continue;
        }
        if (pushed != Status::kOk) {
          return pushed;
        }
        // Re-assign the real page to the destination cache — the paper's "changing
        // the real-page-to-cache assignments, rather than copying".
        UnmapAllMappings(*moving);
        // Threaded stubs keep pointing at the descriptor; its bytes are unchanged.
        map_.Erase(src.id(), PageIndex(s_off));
        moving->cache = &dst;
        moving->offset = d_off;
        moving->sw_dirty = true;
        dst.pages_.splice(dst.pages_.end(), src.pages_, moving->self);
        moving->self = std::prev(dst.pages_.end());
        map_.Insert(dst.id(), PageIndex(d_off),
                    MapEntry{.kind = MapEntry::Kind::kFrame, .page = moving, .cow = nullptr});
        AdoptInboundStubs(dst, *moving);
        ++detail_.move_retargets;
        break;
      }
      if (entry != nullptr) {
        // Stub forms: wait out sync stubs; cow stubs move wholesale.
        if (entry->kind == MapEntry::Kind::kSyncStub) {
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(src, s_off), mu_);
          continue;
        }
        // Cow stub: the deferred-copy placeholder itself is re-assigned to the
        // destination — the IPC receive path moves whole transit slots this way
        // without touching a byte (section 5.1.6).  Its source threading is
        // unaffected by the move.
        std::unique_ptr<CowStub> stub = std::move(entry->cow);
        map_.Erase(src.id(), PageIndex(s_off));
        stub->cache = &dst;
        stub->offset = d_off;
        map_.Insert(dst.id(), PageIndex(d_off),
                    MapEntry{.kind = MapEntry::Kind::kCowStub, .page = nullptr,
                             .cow = std::move(stub)});
        ++detail_.move_retargets;
        break;
      }
      // Source page absent: its value may still be defined by an ancestor or its
      // own segment; move degenerates to a copy for this page.
      Lookup look = LookupValue(src, s_off);
      if (look.kind == Lookup::Kind::kZeroFill) {
        break;  // nothing to move; destination reads as zero (it was cleared)
      }
      bool dropped = false;
      Result<PageDesc*> value = ResolveValue(lock, src, s_off, &dropped);
      if (!value.ok()) {
        return value.status();
      }
      if (dropped) {
        continue;
      }
      PagePin value_pin(**value);
      Result<PageDesc*> copy = MaterializePage(lock, dst, d_off,
                                               memory().FrameData((*value)->frame),
                                               /*dirty=*/true, Prot::kAll);
      if (!copy.ok()) {
        if (copy.status() == Status::kRetry) {
          continue;
        }
        return copy.status();
      }
      break;
    }
  }
  // The source's contents over the range are now undefined: sever its links.
  src.parents_.Erase(src_off, size);
  for (SegOffset delta = 0; delta < size; delta += page) {
    src.pushed_pages_.erase(PageIndex(src_off + delta));
  }
  return Status::kOk;
}

}  // namespace gvm
