// PagedVm — the Paged Virtual Memory manager (PVM), the paper's demand-paged
// implementation of the GMI (section 4).
//
// Characteristics reproduced from the paper:
//   * Support for large, sparse segments and address spaces: no data structure is
//     proportional to segment or address-space size, only to resident memory
//     (section 4.1).
//   * Efficient deferred copy via *history objects* for large data (section 4.2)
//     and a per-virtual-page technique for small data (section 4.3).
//   * Hardware independence: everything below the Mmu interface is replaceable
//     (SoftMmu and HashMmu both work unmodified).
//
// Locking model: one manager-wide mutex (from BaseMm).  Upcalls to segment
// drivers (pullIn, pushOut, getWriteAccess, segmentCreate) are performed with the
// lock *released*; synchronization page stubs keep concurrent accesses to the
// affected pages asleep meanwhile (section 4.1.2).
#ifndef GVM_SRC_PVM_PAGED_VM_H_
#define GVM_SRC_PVM_PAGED_VM_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/pvm/page.h"
#include "src/pvm/pvm_cache.h"
#include "src/sync/sleep_queue.h"
#include "src/vmbase/base_mm.h"

namespace gvm {

// Counters specific to the PVM, beyond the generic MmStats.
struct PvmDetailStats {
  uint64_t sync_stub_waits = 0;       // accesses that slept on an in-transit page
  uint64_t working_objects = 0;       // w1, w2, ... created to keep the shape invariant
  uint64_t history_pushes = 0;        // originals pushed into a history object
  uint64_t per_page_stubs = 0;        // per-virtual-page COW stubs created
  uint64_t stub_resolutions = 0;      // stubs resolved by a write (frame materialized)
  uint64_t ancestor_lookups = 0;      // cache misses resolved by walking the tree
  uint64_t caches_collapsed = 0;      // dying caches merged into their single child
  uint64_t caches_reaped = 0;         // dying caches freed outright
  uint64_t move_retargets = 0;        // pages moved by re-assigning frame-to-cache
  // Fault-recovery accounting (see DESIGN.md "Fault model and recovery semantics").
  uint64_t io_retries = 0;             // transient-kBusError upcalls retried
  uint64_t io_permanent_failures = 0;  // kBusError upcalls that exhausted the retry budget
  uint64_t pushout_requeues = 0;       // failed push-outs re-marked dirty for a later sweep
  uint64_t degraded_segments = 0;      // caches tripped into degraded (read-only) mode
  uint64_t alloc_pressure_retries = 0; // frame allocations retried after an eviction round
  // Fault-around: adjacent resident-in-mapper pages materialized and mapped as a
  // side effect of a neighbouring fault (each one is a fault round-trip saved).
  uint64_t pullin_clustered = 0;
  // Mapper crash-recovery accounting (DESIGN.md §11).
  uint64_t mapper_crashes_observed = 0;   // upcalls that came back kPortDead
  uint64_t recoveries_completed = 0;      // NoteMapperRecovery notifications
  uint64_t journal_replays = 0;           // committed records replayed across recoveries
  uint64_t journal_records_discarded = 0; // torn/corrupt records truncated across recoveries
  uint64_t requests_reissued = 0;         // requeued pushes that later succeeded
  // Memory-pressure accounting (DESIGN.md §15).
  uint64_t sweeps_started = 0;         // threads that won the single-sweeper gate
  uint64_t sweep_waits = 0;            // threads that slept on a pass instead of sweeping
  uint64_t daemon_wakeups = 0;         // times the paging daemon woke on its latch
  uint64_t daemon_passes = 0;          // reclaim passes completed (daemon or test hook)
  uint64_t frames_reclaimed_daemon = 0;// frames freed by reclaim passes (queues, no clock)
  uint64_t batch_pushes = 0;           // multi-page pushOut batches issued
  uint64_t batch_push_pages = 0;       // pages covered by those batches
  uint64_t soft_faults = 0;            // re-faults rescued from a pageout queue, no mapper I/O
  uint64_t standby_hits = 0;           // ... of which came off the standby queue
  uint64_t ws_trims = 0;               // pages demoted from a working set by trim
  uint64_t thrash_throttles = 0;       // faults stalled by the thrash detector
  uint64_t pageout_stalls = 0;         // injected kPageoutStall hits honoured
  uint64_t low_memory_faults = 0;      // injected kLowMemory hits honoured
  // Transparent huge pages (DESIGN.md §16).
  uint64_t promotions = 0;             // spans collapsed to one huge translation
  uint64_t demotions = 0;              // spans split back to base pages ...
  uint64_t demote_cow = 0;             // ... because a COW downgrade hit the span
  uint64_t demote_pageout = 0;         // ... because reclaim evicted into the span
};

class PagedVm final : public BaseMm {
 public:
  struct Options {
    // Copies of at most this many pages use the per-virtual-page technique under
    // CopyPolicy::kAuto; larger ones use history objects (section 4: history
    // objects for "a big data segment", per-page for "an IPC message").
    size_t per_page_threshold_pages = 8;
    // Page-out starts when free frames drop below `low_water` and runs until
    // `high_water` are free.  Zero disables the pager (tests exercising hard OOM).
    size_t low_water_frames = 4;
    size_t high_water_frames = 8;
    // Merge a dying cache into its single remaining child when possible
    // (the history-chain garbage collection discussed in section 4.2.5).
    bool collapse_dying_caches = true;
    // A transient kBusError from a pullIn/pushOut upcall is retried up to this
    // many extra attempts before being treated as permanent.
    uint64_t io_retry_limit = 3;
    // Deterministic exponential backoff between upcall retries: the k-th retry
    // sleeps retry_backoff_us << k microseconds (lock released).  0 disables.
    uint64_t retry_backoff_us = 0;
    // After this many *consecutive* failed push-outs a cache is marked degraded:
    // new writes are refused with kBusError (reads still served) until a pushOut
    // succeeds again, so unsaveable dirty data stops accumulating.
    int degrade_after_failures = 3;
    // When the frame pool is dry, eviction+allocation is retried up to this many
    // extra rounds before kNoMemory surfaces (absorbs transient pile-ups where
    // every frame is momentarily pinned or in transit; the retry loop yields
    // between dry rounds so the threads holding those pages can finish).
    uint64_t alloc_retry_limit = 16;
    // Interpose the per-CPU software TLB (TlbMmu) between the manager and the
    // hardware MMU.  Off = pure delegation, for baselines and A/B benchmarks.
    bool enable_tlb = true;
    // Shootdown publication barrier for the TLB wrapper (kAuto probes the
    // host for membarrier).  The scaling bench sweeps this axis.
    TlbMmu::FenceMode shootdown_fence = TlbMmu::FenceMode::kAuto;
    // Fault-around: on a fault resolved by a pullIn, also materialize up to this
    // many - 1 following pages whose value is resident in the mapper, while free
    // frames stay above the high-water mark.  <= 1 disables clustering.  Off by
    // default so per-upcall accounting in existing tests stays exact; sequential
    // workloads (and throughput_smp) turn it on.
    size_t pullin_cluster_pages = 1;

    // ---- Memory-pressure layer (DESIGN.md §15) ----
    // Run the background paging daemon.  Off by default: background eviction
    // makes page placement nondeterministic, so only pressure worlds (storm
    // tests, the pageout bench) opt in.  When on, the constructor also installs
    // the allocator's low-memory hook and sizes the emergency reserve.
    bool pageout_daemon = false;
    // Free-frame level at or below which the allocator's low-memory hook kicks
    // the daemon.  Kept below low_water_frames so deterministic single-thread
    // tests reach the synchronous balance path before the daemon ever wakes.
    size_t daemon_wake_frames = 2;
    // Per-address-space working-set cap, in pages.  0 = uncapped: no fault-time
    // trim, and reclaim passes trim only detected thrashers.
    size_t working_set_limit_pages = 0;
    // Upper bound on one daemon batch pushOut, in pages.  The default (8 pages)
    // keeps a 4 KiB-page batch inside one IPC chunk (Message::kMaxBytes), so
    // the journalled swap mapper commits the whole batch with one WAL record.
    size_t pushout_batch_pages = 8;
    // Re-fault-rate EWMA (fixed point, x1000: 1000 = every mapped page is a
    // rescue off a pageout queue) above which an address space counts as
    // thrashing — reclaim trims it to half its working set first, and its
    // faults are throttled while the pool sits below low water.  0 disables.
    uint64_t thrash_ewma_threshold = 0;
    // Frames withheld from normal allocation for the reclaim path (forwarded
    // to PhysicalMemory::SetEmergencyReserve).  kAutoReserve sizes it from the
    // frame count when the daemon is on, 0 otherwise — no reserve without a
    // reclaimer entitled to it.
    static constexpr size_t kAutoReserve = static_cast<size_t>(-1);
    size_t emergency_reserve_frames = kAutoReserve;

    // ---- Transparent huge pages (DESIGN.md §16) ----
    // Fault-time promotion to the MMU's second granule: when a fault leaves a
    // huge-aligned span of the region fully mapped with uniform protection,
    // migrate it onto a contiguous frame run and replace the base PTEs with
    // one wide translation.  Off by default: promotion changes frame placement
    // and per-page counters, so only huge-aware worlds (benches, §16 tests)
    // opt in.  A no-op when the MMU reports no second granule.
    bool transparent_huge = false;
  };

  PagedVm(PhysicalMemory& memory, Mmu& mmu) : PagedVm(memory, mmu, Options{}) {}
  PagedVm(PhysicalMemory& memory, Mmu& mmu, Options options);
  ~PagedVm() override;

  // ---- MemoryManager ----
  Result<Cache*> CacheCreate(SegmentDriver* driver, std::string name) override;
  const char* name() const override { return "PVM"; }
  // A crashed mapper finished recovery: fold the journal-replay counts into the
  // detail stats.  (Degraded caches exit via the next successful pushOut, which
  // the segment manager triggers by Sync()ing the affected caches.)
  void NoteMapperRecovery(uint64_t records_replayed,
                          uint64_t records_discarded) override GVM_EXCLUDES(mu_);

  // Snapshot of the PVM-specific counters, taken under the manager lock
  // (returned by value: debug dumps and benches read these concurrently).
  PvmDetailStats detail_stats() const GVM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return detail_;
  }

  // ---- Introspection for tests, figures, and benchmarks ----
  size_t CacheCount() const;
  size_t GlobalMapEntries() const;
  size_t SyncStubCount() const;
  size_t CowStubCount() const;
  // Pages currently flagged in_transit (must be zero once the system quiesces,
  // even after injected failures).
  size_t InTransitCount() const;
  // Test hook: wake every thread sleeping on (cache, offset)'s stub key without
  // changing any state.  SleepQueue::Wait permits spurious wakeups by contract,
  // so this merely provokes the re-check path sleepers must already handle.
  void PokeSleepers(const Cache& cache, SegOffset offset);

  // ---- Paging daemon control (pageout.cc; DESIGN.md §15) ----
  // Start/stop the background daemon (both idempotent).  Stop joins the thread
  // and uninstalls the allocator hook, so it MUST run before the nucleus and
  // mappers this manager pages through are destroyed; worlds that outlive
  // their mappers hold a guard whose destructor calls it (the PagedVm
  // destructor also stops the daemon, as a backstop for same-lifetime worlds).
  void StartPageoutDaemon();
  void StopPageoutDaemon();
  // Wake the daemon if it is running (cheap, callable under any lock below
  // Rank::kPageoutDaemon; the allocator's low-memory hook lands here).
  void KickPageoutDaemon();
  // Deterministic test hook: run one full reclaim pass (standby harvest,
  // working-set trim, batched modified-queue pushes, fallback clock sweep) on
  // the calling thread, exactly as a daemon wakeup would.
  void RunPageoutPassForTest();
  // Queue/working-set introspection for tests and the bench.
  size_t ModifiedQueueLength() const;
  size_t StandbyQueueLength() const;
  size_t WorkingSetPages(AsId as) const;
  // Renders the history tree reachable from `cache` in the notation of Figure 3.
  std::string DumpTree(Cache& cache) const;
  // One-page human-readable dump of MM, detail, MMU and TLB counters.
  std::string DumpStats() const;
  // Walks every structural invariant (tree shape, reverse-map consistency, global
  // map consistency); returns kOk or fails fast with a log of the violation.
  [[nodiscard]] Status CheckInvariants() const;

 protected:
  // ---- BaseMm hooks ----
  [[nodiscard]] Status ResolveFault(RegionImpl& region, const PageFault& fault, SegOffset page_offset,
                      MutexLock& lock) override GVM_REQUIRES(mu_);
  void OnRegionMapped(RegionImpl& region, MutexLock& lock) override GVM_REQUIRES(mu_);
  void OnRegionUnmapping(RegionImpl& region) override GVM_REQUIRES(mu_);
  void OnRegionSplit(RegionImpl& first, RegionImpl& second) override GVM_REQUIRES(mu_);
  void OnRegionProtection(RegionImpl& region) override GVM_REQUIRES(mu_);
  [[nodiscard]] Status OnRegionLock(RegionImpl& region, MutexLock& lock) override GVM_REQUIRES(mu_);
  [[nodiscard]] Status OnRegionUnlock(RegionImpl& region) override GVM_REQUIRES(mu_);

 private:
  friend class PvmCache;

  // ---- Small helpers (lock held) ----
  uint64_t PageIndex(SegOffset offset) const { return offset / page_size(); }
  uint64_t StubKey(const PvmCache& cache, SegOffset offset) const;
  PageDesc* FindOwned(PvmCache& cache, SegOffset page_offset) GVM_REQUIRES(mu_);
  MapEntry* FindEntry(PvmCache& cache, SegOffset page_offset) GVM_REQUIRES(mu_);

  // Allocate a frame, evicting if the pool is dry and page-out is enabled.  May
  // drop the lock (page-out upcalls); `*dropped_lock` reports that.
  Result<FrameIndex> AllocateFrame(MutexLock& lock, bool* dropped_lock) GVM_REQUIRES(mu_);

  // Create a page owned by `cache` at `page_offset` with the given bytes (nullptr
  // means zero-fill).  May drop the lock to evict; on any drop it re-checks that
  // the slot is still empty and returns kBusy to make the caller retry.
  Result<PageDesc*> MaterializePage(MutexLock& lock, PvmCache& cache,
                                    SegOffset page_offset, const std::byte* bytes, bool dirty,
                                    Prot max_prot) GVM_REQUIRES(mu_);

  void FreePage(PageDesc* page) GVM_REQUIRES(mu_);  // unmaps, unthreads stubs, frees the frame

  // ---- Transparent huge pages (DESIGN.md §16) ----
  // Why a demotion was counted (for the detail stats split).
  enum class DemoteReason { kOther, kCow, kPageout };
  // True when this manager runs the second granule: opted in AND the MMU has one.
  bool HugeEnabled() const {
    return options_.transparent_huge && mmu().huge_page_size() > page_size();
  }
  // If `va` falls inside a promoted span of `as`, split it back to base pages
  // (under a TlbGatherScope; the wide translation dies before the caller
  // mutates any base page of the span) and drop the span record.  Callers
  // invoke this before ANY base-granular MMU mutation inside the span — the
  // inner MMU would auto-split anyway, but routing through here keeps the
  // span set exact and the demotion counters attributed.
  void DemoteIfHuge(AsId as, Vaddr va, DemoteReason reason) GVM_REQUIRES(mu_);
  // Fault-time promotion: if the huge-aligned span around `page_va` is fully
  // mapped by one region with uniform protection, collapse it to one wide
  // translation (migrating the pages onto a contiguous frame run first when
  // they are not already contiguous).  Never drops the manager lock; failure
  // to promote (fragmentation, mixed state) is silent — the span stays on
  // base pages.
  void MaybePromote(const PageFault& fault, Vaddr page_va) GVM_REQUIRES(mu_);

  // ---- MMU mapping bookkeeping ----
  void MapPage(RegionImpl& region, Vaddr page_va, PageDesc& page, Prot prot,
               PvmCache& via_cache) GVM_REQUIRES(mu_);
  void UnmapMapping(PageDesc& page, size_t index,
                    DemoteReason reason = DemoteReason::kOther) GVM_REQUIRES(mu_);
  void UnmapAllMappings(PageDesc& page,
                        DemoteReason reason = DemoteReason::kOther) GVM_REQUIRES(mu_);
  // Remove mappings installed through caches other than the owner (descendant
  // reads through the tree) — required before the owner's value may change.
  void RemoveForeignMappings(PageDesc& page) GVM_REQUIRES(mu_);
  // Downgrade every mapping of `page` to read-only (copy source protection).
  void WriteProtectPage(PageDesc& page) GVM_REQUIRES(mu_);
  // The protection a mapping of `page` through `region` may carry right now.
  Prot EffectiveProt(const RegionImpl& region, const PageDesc& page, bool foreign) const;
  // True when the owner cache must not write `page` without history bookkeeping.
  bool IsCowProtected(const PageDesc& page) const;

  // ---- Miss resolution (the tree walk of section 4.2.1) ----
  // Outcome of looking for the current value of (cache, page_offset).
  struct Lookup {
    enum class Kind {
      kPage,      // value found: `page` (owner may be an ancestor)
      kZeroFill,  // no value anywhere: demand-zero in `cache`
      kPullIn,    // value lives in `source`'s segment at `source_offset`
      kBlocked,   // a sync stub was hit; caller must wait and retry
    };
    Kind kind = Kind::kZeroFill;
    PageDesc* page = nullptr;
    PvmCache* source = nullptr;
    SegOffset source_offset = 0;
    bool copy_on_reference = false;  // a kCopyOnReference parent link was crossed
  };
  Lookup LookupValue(PvmCache& cache, SegOffset page_offset) GVM_REQUIRES(mu_);

  // Ensure the current value of (cache, page_offset) is resident somewhere,
  // performing pullIn/zero-fill as needed.  Returns the page, or kBusy if the lock
  // was dropped (caller retries), or a hard error.
  Result<PageDesc*> ResolveValue(MutexLock& lock, PvmCache& cache,
                                 SegOffset page_offset, bool* dropped_lock) GVM_REQUIRES(mu_);

  // Ensure (cache, page_offset) has a private, writable page owned by `cache`,
  // doing all history bookkeeping (section 4.2) and stub resolution (section 4.3).
  Result<PageDesc*> EnsureWritablePage(MutexLock& lock, PvmCache& cache,
                                       SegOffset page_offset, bool* dropped_lock) GVM_REQUIRES(mu_);

  // Push the original value of an owned page into the history object covering it,
  // if one exists and lacks its own version (sections 4.2.2 / 4.2.3).
  [[nodiscard]] Status PushToHistory(MutexLock& lock, PvmCache& cache, PageDesc& page,
                       bool* dropped_lock) GVM_REQUIRES(mu_);

  // Detach all per-page stubs threaded on `page` before its value changes: give
  // them one shared copy of the original value (section 4.3 write-violation rule).
  [[nodiscard]] Status DetachStubs(MutexLock& lock, PageDesc& page, bool* dropped_lock) GVM_REQUIRES(mu_);

  // Ensure no per-page stub still *depends* on the value of (cache, page_offset):
  // called before that value is overwritten wholesale (copy-into, move-out,
  // invalidate).  Threaded stubs are detached via DetachStubs; non-resident-form
  // stubs get a materialized shared copy of the current value.
  [[nodiscard]] Status MaterializeStubsOf(MutexLock& lock, PvmCache& cache,
                            SegOffset page_offset) GVM_REQUIRES(mu_);

  // ---- Per-page stub link maintenance ----
  // Attach `stub` to its source: threaded on the page descriptor when resident,
  // registered in the source cache's inbound table otherwise.
  void ThreadStub(CowStub* stub) GVM_REQUIRES(mu_);
  // Detach `stub` from whichever source link it currently has.
  void UnlinkStub(CowStub* stub) GVM_REQUIRES(mu_);
  // A page of `cache` just became resident: re-thread the stubs that were waiting
  // on it in non-resident form.
  void AdoptInboundStubs(PvmCache& cache, PageDesc& page) GVM_REQUIRES(mu_);

  // ---- Upcalls (drop the lock internally) ----
  [[nodiscard]] Status PullInLocked(MutexLock& lock, PvmCache& cache,
                      SegOffset page_offset, Access access) GVM_REQUIRES(mu_);
  // Fault-around (see Options::pullin_cluster_pages): after the primary fault at
  // `primary_va` resolved, opportunistically pull in and map following pages.
  void ClusterPullIns(MutexLock& lock, const PageFault& fault,
                      Vaddr primary_va) GVM_REQUIRES(mu_);
  [[nodiscard]] Status PushOutPageLocked(MutexLock& lock, PvmCache& cache, PageDesc& page,
                           bool free_after) GVM_REQUIRES(mu_);
  // Assign a segment to an MM-created/temporary cache via segmentCreate.
  [[nodiscard]] Status EnsureDriver(MutexLock& lock, PvmCache& cache) GVM_REQUIRES(mu_);

  // ---- Copy engines (called from PvmCache, lock held) ----
  [[nodiscard]] Status CopyRange(MutexLock& lock, PvmCache& src, SegOffset src_off,
                   PvmCache& dst, SegOffset dst_off, size_t size, CopyPolicy policy) GVM_REQUIRES(mu_);
  [[nodiscard]] Status EagerCopy(MutexLock& lock, PvmCache& src, SegOffset src_off,
                   PvmCache& dst, SegOffset dst_off, size_t size) GVM_REQUIRES(mu_);
  [[nodiscard]] Status HistoryCopy(MutexLock& lock, PvmCache& src, SegOffset src_off,
                     PvmCache& dst, SegOffset dst_off, size_t size, bool copy_on_reference) GVM_REQUIRES(mu_);
  [[nodiscard]] Status PerPageCopy(MutexLock& lock, PvmCache& src, SegOffset src_off,
                     PvmCache& dst, SegOffset dst_off, size_t size) GVM_REQUIRES(mu_);
  [[nodiscard]] Status MoveRange(MutexLock& lock, PvmCache& src, SegOffset src_off,
                   PvmCache& dst, SegOffset dst_off, size_t size) GVM_REQUIRES(mu_);

  // Discard `dst`'s own state over [dst_off, dst_off+size) prior to its logical
  // overwrite by a copy: owned pages are first offered to dst's history.
  [[nodiscard]] Status ClearDestinationRange(MutexLock& lock, PvmCache& dst,
                               SegOffset dst_off, size_t size) GVM_REQUIRES(mu_);

  // Before `cache`'s contents over the range change wholesale (copy-into or move
  // source), materialize its current values into any history object covering the
  // range, making the history self-sufficient.
  [[nodiscard]] Status SecureHistorySnapshots(MutexLock& lock, PvmCache& cache,
                                SegOffset offset, size_t size) GVM_REQUIRES(mu_);

  // Write-protect the owned pages of `src` in a range (copy source preparation).
  void ProtectSourcePages(PvmCache& src, SegOffset src_off, size_t size) GVM_REQUIRES(mu_);

  // ---- History-tree surgery (history.cc) ----
  // Link dst as the deferred copy of src over the given fragments, inserting a
  // working object when src already has a history there (section 4.2.3).
  [[nodiscard]] Status LinkCopy(MutexLock& lock, PvmCache& src, SegOffset src_off,
                  PvmCache& dst, SegOffset dst_off, size_t size, bool copy_on_reference) GVM_REQUIRES(mu_);

  // ---- Cache lifetime ----
  Result<PvmCache*> CreateCacheLocked(SegmentDriver* driver, std::string name,
                                      bool temporary) GVM_REQUIRES(mu_);
  [[nodiscard]] Status DestroyCacheLocked(MutexLock& lock, PvmCache& cache) GVM_REQUIRES(mu_);
  bool CacheHasDependents(const PvmCache& cache) const GVM_REQUIRES(mu_);
  // Distinct caches whose parent links target `parent`, sorted by id.
  std::vector<PvmCache*> ChildrenOfCache(PvmCache* parent) const GVM_REQUIRES(mu_);
  // Free a dying cache whose last dependent vanished; cascades to its ancestors.
  void ReapIfUnreferenced(MutexLock& lock, PvmCache& cache) GVM_REQUIRES(mu_);
  // Merge a dying cache into its single child if possible (section 4.2.5 GC).
  bool TryCollapse(MutexLock& lock, PvmCache& cache) GVM_REQUIRES(mu_);
  void DropTreeLinksTo(PvmCache& cache) GVM_REQUIRES(mu_);
  void ReleasePages(PvmCache& cache) GVM_REQUIRES(mu_);  // free all pages, stubs and map entries

  // ---- Explicit I/O and cache management (io.cc) ----
  [[nodiscard]] Status CacheRead(MutexLock& lock, PvmCache& cache, SegOffset offset,
                   void* buffer, size_t size) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheWrite(MutexLock& lock, PvmCache& cache, SegOffset offset,
                    const void* buffer, size_t size) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheFillUp(MutexLock& lock, PvmCache& cache, SegOffset offset,
                     const void* data, size_t size, Prot max_prot) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheCopyBack(MutexLock& lock, PvmCache& cache, SegOffset offset,
                       void* buffer, size_t size, bool remove) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheFlush(MutexLock& lock, PvmCache& cache, bool discard) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheInvalidate(MutexLock& lock, PvmCache& cache, SegOffset offset,
                         size_t size) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheSetProtection(MutexLock& lock, PvmCache& cache,
                            SegOffset offset, size_t size, Prot max_prot) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheLockRange(MutexLock& lock, PvmCache& cache, SegOffset offset,
                        size_t size, bool lock_pages) GVM_REQUIRES(mu_);

  // ---- Page-out (pageout.cc) ----
  // Keep the free-frame pool above the low-water mark.  Serialized behind the
  // single-sweeper gate: the thread that wins the gate sweeps, every other
  // caller sleeps on frame availability until the pass completes.  Returns
  // true if the lock was dropped at any point.
  bool BalanceFreeFrames(MutexLock& lock) GVM_REQUIRES(mu_);
  PageDesc* PickVictim() GVM_REQUIRES(mu_);
  bool PageIsDirty(const PageDesc& page) const;

  // ---- Memory-pressure layer (pageout.cc; DESIGN.md §15) ----
  // True when `page` can be freed with no upcall and no data loss: clean and
  // reproducible from its segment / an ancestor / zero-fill.  The single
  // arbiter for clean drops — the clock sweep and the standby harvest both
  // route through it.
  bool FreeableWithoutIO(const PageDesc& page) const GVM_REQUIRES(mu_);
  // Re-derive `page`'s pageout-queue membership after a state change: unmapped
  // unpinned resident pages land on modified (dirty) or standby (clean).
  void ReconsiderQueue(PageDesc& page) GVM_REQUIRES(mu_);
  void QueueRemove(PageDesc& page) GVM_REQUIRES(mu_);
  // Working-set index maintenance, driven from MapPage / UnmapMapping.
  void WsNoteMapped(AsId as, PageDesc& page) GVM_REQUIRES(mu_);
  void WsNoteUnmapped(AsId as, PageDesc& page) GVM_REQUIRES(mu_);
  // Demote `page` from `as`'s working set: unmap its mappings in that address
  // space only (no I/O — the queue hooks pick the page up for the daemon).
  void TrimPageFromAs(PageDesc& page, AsId as) GVM_REQUIRES(mu_);
  // Free standby-queue heads (no I/O) until `target` frames are free; returns
  // the number freed.  Never drops the lock.
  size_t ReclaimStandbyLocked(size_t target) GVM_REQUIRES(mu_);
  // Trim every over-limit working set, thrashers (EWMA above threshold) first
  // and hardest.  Never drops the lock.
  void TrimWorkingSetsLocked() GVM_REQUIRES(mu_);
  // Push `pages` contiguous dirty resident pages of `cache` starting at
  // `start` in ONE driver pushOut (one IPC chunk, one WAL commit record).
  // Per-page bookkeeping mirrors PushOutPageLocked; drops the lock.
  Status PushOutRunLocked(MutexLock& lock, PvmCache& cache, SegOffset start,
                          size_t pages) GVM_REQUIRES(mu_);
  // One full reclaim pass under the sweeper gate; returns true if the lock was
  // dropped.  Shared by the daemon thread and RunPageoutPassForTest.
  bool DaemonReclaimPass(MutexLock& lock) GVM_REQUIRES(mu_);
  void DaemonMain();
  PhysicalMemory::AllocClass AllocClassForThisThread() const GVM_REQUIRES(mu_) {
    return active_reclaimer_ == std::this_thread::get_id()
               ? PhysicalMemory::AllocClass::kEmergency
               : PhysicalMemory::AllocClass::kNormal;
  }

  const Options options_;  // pressure sentinels resolved by the constructor
  CacheId next_cache_id_ GVM_GUARDED_BY(mu_) = 1;
  std::unordered_map<CacheId, std::unique_ptr<PvmCache>> caches_ GVM_GUARDED_BY(mu_);
  GlobalMap map_ GVM_GUARDED_BY(mu_);
  SleepQueue sleepers_;
  // Per-region table of mapped pages, for O(resident) unmap/protect of a region.
  std::unordered_map<RegionImpl*, std::map<Vaddr, PageDesc*>> region_maps_ GVM_GUARDED_BY(mu_);
  // Round-robin page-out cursor (cache id, page offset), clock-style.
  CacheId clock_cache_ GVM_GUARDED_BY(mu_) = 0;
  SegOffset clock_offset_ GVM_GUARDED_BY(mu_) = 0;
  PvmDetailStats detail_ GVM_GUARDED_BY(mu_);
  uint32_t working_counter_ GVM_GUARDED_BY(mu_) = 0;  // names w1, w2, ... for working objects
  // Promoted spans, keyed by (address space, huge-aligned VA).  The record is
  // advisory: an inner auto-split can outrun it, so DemoteIfHuge tolerates a
  // stale entry (DemoteHuge returns kNotFound) and merely erases it.
  std::set<std::pair<AsId, Vaddr>> huge_spans_ GVM_GUARDED_BY(mu_);

  // ---- Memory-pressure state (DESIGN.md §15) ----
  // Per-address-space working set: FIFO of resident pages the space has mapped
  // (front = oldest) plus a lookup index.  Invariant: a page is in ws[as] iff
  // it carries at least one mapping in `as`.
  struct WorkingSet {
    std::list<PageDesc*> fifo;
    std::unordered_map<PageDesc*, std::list<PageDesc*>::iterator> index;
    // Re-fault-rate EWMA, fixed point x1000 (alpha = 1/8): rises when mapped
    // pages keep being rescued off the pageout queues (evicted too recently).
    uint64_t refault_ewma_x1000 = 0;
  };
  std::map<AsId, WorkingSet> working_sets_ GVM_GUARDED_BY(mu_);
  // Global pageout queues (front = oldest candidate).  PageDesc::queue +
  // queue_pos mirror membership; splices between caches keep pointers stable.
  std::list<PageDesc*> modified_queue_ GVM_GUARDED_BY(mu_);
  std::list<PageDesc*> standby_queue_ GVM_GUARDED_BY(mu_);
  // Single-sweeper gate: while a reclaim pass runs, other allocators sleep on
  // kFrameWaitKey instead of stampeding the clock; every completed pass bumps
  // the epoch and wakes them, whether or not it freed anything.
  bool sweeping_ GVM_GUARDED_BY(mu_) = false;
  uint64_t reclaim_epoch_ GVM_GUARDED_BY(mu_) = 0;
  std::thread::id active_reclaimer_ GVM_GUARDED_BY(mu_);
  // SleepQueue key for frame-availability waits.  Far outside the StubKey
  // range in practice; a collision only causes spurious wakeups.
  static constexpr uint64_t kFrameWaitKey = ~0ull;

  // Paging-daemon wake latch.  Rank kPageoutDaemon sits above kMmManager and
  // the frame locks so Kick works from under any of them; the daemon never
  // holds the latch while taking another lock.
  Mutex daemon_mu_{Rank::kPageoutDaemon, "PagedVm::daemon_mu_"};
  CondVar daemon_cv_;
  bool daemon_kicked_ GVM_GUARDED_BY(daemon_mu_) = false;
  bool daemon_stop_ GVM_GUARDED_BY(daemon_mu_) = false;
  std::atomic<bool> daemon_active_{false};  // cheap pre-latch check for Kick
  std::thread daemon_;  // gvm-lint: allow(annotation-coverage): joined by StopPageoutDaemon
  // Allocator low-water hook: kicks the daemon from the allocating thread.
  struct DaemonKicker final : PhysicalMemory::LowMemoryHook {
    PagedVm* vm = nullptr;
    void OnLowMemory() override { vm->KickPageoutDaemon(); }
  };
  DaemonKicker daemon_kicker_;  // gvm-lint: allow(annotation-coverage): written once in the constructor, before the hook is installed
};

}  // namespace gvm

#endif  // GVM_SRC_PVM_PAGED_VM_H_
