// FragmentMap: sorted, non-overlapping byte ranges with a value per range.
//
// Section 4.2.4 of the paper generalizes the "parent" attribute of a cache
// descriptor to "a list of parent descriptors.  Each such descriptor holds the
// start offset and size of a fragment, and a pointer to the parent local-cache
// descriptor.  The list is sorted by this offset."  FragmentMap is exactly that
// structure; the PVM instantiates it for parent links and history links.
//
// Inserting a range replaces whatever previously overlapped it (a new copy into a
// segment logically overwrites the older deferred-copy source for that fragment).
#ifndef GVM_SRC_PVM_FRAGMENT_MAP_H_
#define GVM_SRC_PVM_FRAGMENT_MAP_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "src/hal/types.h"

namespace gvm {

template <typename V>
class FragmentMap {
 public:
  struct Fragment {
    SegOffset start = 0;
    uint64_t size = 0;
    V value{};

    SegOffset end() const { return start + size; }
  };

  bool empty() const { return frags_.empty(); }
  size_t fragment_count() const { return frags_.size(); }

  // The fragment containing `offset`, or nullptr.
  const Fragment* Find(SegOffset offset) const {
    auto it = FindIter(offset);
    return it == frags_.end() ? nullptr : &it->second;
  }
  Fragment* Find(SegOffset offset) {
    auto it = FindIter(offset);
    return it == frags_.end() ? nullptr : &it->second;
  }

  // Insert [start, start+size) -> value, truncating/splitting anything that
  // previously overlapped the range.
  void Insert(SegOffset start, uint64_t size, V value) {
    assert(size > 0);
    Erase(start, size);
    frags_.emplace(start, Fragment{.start = start, .size = size, .value = value});
  }

  // Remove any coverage of [start, start+size), splitting boundary fragments.
  void Erase(SegOffset start, uint64_t size) {
    assert(size > 0);
    const SegOffset end = start + size;
    // Handle a fragment straddling `start` from the left.
    auto it = frags_.lower_bound(start);
    if (it != frags_.begin()) {
      auto prev = std::prev(it);
      Fragment& f = prev->second;
      if (f.end() > start) {
        // Keep the left part [f.start, start); re-add the right tail beyond `end`.
        Fragment tail = f;
        f.size = start - f.start;
        if (tail.end() > end) {
          uint64_t cut = end - tail.start;
          frags_.emplace(end, Fragment{.start = end, .size = tail.end() - end,
                                       .value = Advance(tail.value, cut)});
        }
      }
    }
    // Remove/trim fragments starting inside [start, end).
    it = frags_.lower_bound(start);
    while (it != frags_.end() && it->second.start < end) {
      Fragment f = it->second;
      it = frags_.erase(it);
      if (f.end() > end) {
        uint64_t cut = end - f.start;
        frags_.emplace(end, Fragment{.start = end, .size = f.end() - end,
                                     .value = Advance(f.value, cut)});
        break;
      }
    }
  }

  // All fragments overlapping [start, start+size), clipped to that range.
  std::vector<Fragment> Overlapping(SegOffset start, uint64_t size) const {
    std::vector<Fragment> out;
    const SegOffset end = start + size;
    auto it = frags_.lower_bound(start);
    if (it != frags_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end() > start) {
        out.push_back(Clip(prev->second, start, end));
      }
    }
    for (; it != frags_.end() && it->second.start < end; ++it) {
      out.push_back(Clip(it->second, start, end));
    }
    return out;
  }

  // Iterate every fragment in order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [start, frag] : frags_) {
      fn(frag);
    }
  }

  void Clear() { frags_.clear(); }

 private:
  // Values that carry a base offset must shift it when a fragment is clipped from
  // the left; value types opt in by providing `V Advanced(uint64_t delta) const`.
  template <typename T>
  static auto AdvanceImpl(const T& v, uint64_t delta, int) -> decltype(v.Advanced(delta)) {
    return v.Advanced(delta);
  }
  template <typename T>
  static T AdvanceImpl(const T& v, uint64_t /*delta*/, long) {  // NOLINT
    return v;
  }
  static V Advance(const V& v, uint64_t delta) { return AdvanceImpl(v, delta, 0); }

  static Fragment Clip(const Fragment& f, SegOffset start, SegOffset end) {
    SegOffset s = f.start > start ? f.start : start;
    SegOffset e = f.end() < end ? f.end() : end;
    assert(s < e);
    return Fragment{.start = s, .size = e - s, .value = Advance(f.value, s - f.start)};
  }

  typename std::map<SegOffset, Fragment>::const_iterator FindIter(SegOffset offset) const {
    auto it = frags_.upper_bound(offset);
    if (it == frags_.begin()) {
      return frags_.end();
    }
    --it;
    return it->second.end() > offset ? it : frags_.end();
  }
  typename std::map<SegOffset, Fragment>::iterator FindIter(SegOffset offset) {
    auto it = frags_.upper_bound(offset);
    if (it == frags_.begin()) {
      return frags_.end();
    }
    --it;
    return it->second.end() > offset ? it : frags_.end();
  }

  std::map<SegOffset, Fragment> frags_;
};

}  // namespace gvm

#endif  // GVM_SRC_PVM_FRAGMENT_MAP_H_
