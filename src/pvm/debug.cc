// Introspection: a Figure 3-style rendering of history trees and a structural
// invariant walker used by the property tests.
#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "src/pvm/paged_vm.h"
#include "src/util/log.h"

namespace gvm {

std::vector<PvmCache*> PagedVm::ChildrenOfCache(PvmCache* parent) const {
  std::vector<PvmCache*> children;
  for (const auto& [id, cache] : caches_) {
    if (cache.get() == parent) {
      continue;
    }
    bool points = false;
    cache->parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (frag.value.cache == parent) {
        points = true;
      }
    });
    if (points) {
      children.push_back(cache.get());
    }
  }
  std::sort(children.begin(), children.end(),
            [](PvmCache* a, PvmCache* b) { return a->id() < b->id(); });
  return children;
}

std::string PagedVm::DumpTree(Cache& cache) const {
  MutexLock lock(mu_);
  auto& start = static_cast<PvmCache&>(cache);
  // Find the root by walking parent links upward from `cache`.
  PvmCache* root = &start;
  for (int depth = 0; depth < 1024; ++depth) {
    PvmCache* up = nullptr;
    root->parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (up == nullptr) {
        up = frag.value.cache;
      }
    });
    if (up == nullptr) {
      break;
    }
    root = up;
  }
  std::ostringstream out;
  std::unordered_set<const PvmCache*> visited;
  // Depth-first render.
  struct Item {
    PvmCache* cache;
    int depth;
  };
  std::vector<Item> stack{{root, 0}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (!visited.insert(item.cache).second) {
      continue;
    }
    for (int i = 0; i < item.depth; ++i) {
      out << "  ";
    }
    out << item.cache->name() << " (id=" << item.cache->id();
    if (item.cache->dying_) {
      out << ", dying";
    }
    out << ") pages=[";
    std::vector<SegOffset> offsets;
    for (const PageDesc& page : item.cache->pages_) {
      offsets.push_back(page.offset);
    }
    std::sort(offsets.begin(), offsets.end());
    for (size_t i = 0; i < offsets.size(); ++i) {
      if (i > 0) {
        out << " ";
      }
      out << offsets[i] / page_size();
      PageDesc* page = const_cast<PagedVm*>(this)->FindOwned(*item.cache, offsets[i]);
      if (page != nullptr && IsCowProtected(*page)) {
        out << "*";  // the figure's grey (read-only protected) frames
      }
    }
    out << "]";
    bool first_hist = true;
    item.cache->histories_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      out << (first_hist ? " history={" : ", ");
      first_hist = false;
      out << frag.value.cache->name() << ":[" << frag.start / page_size() << ".."
          << (frag.end() - 1) / page_size() << "]";
    });
    if (!first_hist) {
      out << "}";
    }
    out << "\n";
    auto children = ChildrenOfCache(item.cache);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(Item{*it, item.depth + 1});
    }
  }
  return out.str();
}

std::string PagedVm::DumpStats() const {
  auto* self = const_cast<PagedVm*>(this);
  const Cpu::Stats cs = self->cpu().SnapshotStats();
  const Mmu::Stats ms = self->mmu().stats();
  MutexLock lock(self->mu_);
  const MmStats& mm = self->mutable_stats();  // stats() would re-lock mu_
  const PvmDetailStats& d = detail_;
  std::ostringstream out;
  out << "mm: faults=" << mm.page_faults << " prot_faults=" << mm.protection_faults
      << " zero_fills=" << mm.zero_fills << " pull_ins=" << mm.pull_ins
      << " push_outs=" << mm.push_outs << " cow_copies=" << mm.cow_copies
      << " paged_out=" << mm.pages_paged_out << "\n";
  out << "pvm: stub_waits=" << d.sync_stub_waits << " working=" << d.working_objects
      << " history_pushes=" << d.history_pushes << " per_page_stubs=" << d.per_page_stubs
      << " stub_resolutions=" << d.stub_resolutions << " ancestor_lookups=" << d.ancestor_lookups
      << " collapsed=" << d.caches_collapsed << " reaped=" << d.caches_reaped
      << " retargets=" << d.move_retargets << "\n";
  out << "recovery: io_retries=" << d.io_retries << " io_permanent=" << d.io_permanent_failures
      << " pushout_requeues=" << d.pushout_requeues << " degraded=" << d.degraded_segments
      << " alloc_retries=" << d.alloc_pressure_retries
      << " pullin_clustered=" << d.pullin_clustered << "\n";
  out << "crash: mapper_crashes=" << d.mapper_crashes_observed
      << " recoveries=" << d.recoveries_completed
      << " journal_replays=" << d.journal_replays
      << " journal_discarded=" << d.journal_records_discarded
      << " reissued=" << d.requests_reissued << "\n";
  out << "tlb: hits=" << cs.tlb_hits << " huge_hits=" << cs.tlb_huge_hits
      << " misses=" << cs.tlb_misses
      << " shootdowns=" << cs.tlb_shootdowns << " shootdown_pages=" << cs.tlb_shootdown_pages
      << " shootdown_ranges=" << cs.tlb_shootdown_ranges << "\n";
  const PhysicalMemory::Stats ps = memory().stats();
  out << "huge: promotions=" << d.promotions << " demotions=" << d.demotions
      << " demote_cow=" << d.demote_cow << " demote_pageout=" << d.demote_pageout
      << " run_allocs=" << ps.run_allocations << " run_failures=" << ps.run_failures
      << "\n";
  out << "frames: allocs=" << ps.allocations << " frees=" << ps.frees
      << " magazine_hits=" << ps.magazine_hits << " refills=" << ps.magazine_refills
      << " drains=" << ps.magazine_drains << " steals=" << ps.magazine_steals
      << " reserve_grants=" << ps.reserve_grants
      << " lowmem_kicks=" << ps.low_memory_kicks << "\n";
  out << "pressure: sweeps=" << d.sweeps_started << " sweep_waits=" << d.sweep_waits
      << " daemon_wakeups=" << d.daemon_wakeups << " passes=" << d.daemon_passes
      << " daemon_reclaimed=" << d.frames_reclaimed_daemon
      << " batches=" << d.batch_pushes << "/" << d.batch_push_pages
      << " soft_faults=" << d.soft_faults << " standby_hits=" << d.standby_hits
      << " ws_trims=" << d.ws_trims << " throttles=" << d.thrash_throttles
      << " stalls=" << d.pageout_stalls << " lowmem_faults=" << d.low_memory_faults
      << " modified=" << modified_queue_.size() << " standby=" << standby_queue_.size()
      << "\n";
  out << "mmu: maps=" << ms.maps << " unmaps=" << ms.unmaps << " protects=" << ms.protects
      << " translations=" << ms.translations << " faults=" << ms.faults
      << " spaces=" << ms.spaces_created << "/" << ms.spaces_destroyed << "\n";
  return out.str();
}

Status PagedVm::CheckInvariants() const {
  MutexLock lock(mu_);
  auto* self = const_cast<PagedVm*>(this);
  bool ok = true;
  auto fail = [&ok](const std::string& what) {
    GVM_LOG(Error) << "invariant violated: " << what;
    ok = false;
  };

  std::unordered_set<const PageDesc*> all_pages;
  for (const auto& [id, cache] : caches_) {
    for (const PageDesc& page : cache->pages_) {
      all_pages.insert(&page);
      // Page descriptors point back at their cache and are in the global map.
      if (page.cache != cache.get()) {
        fail("page back-pointer does not match owning cache " + cache->name());
      }
      MapEntry* entry = self->map_.Find(cache->id(), page.offset / page_size());
      if (entry == nullptr || entry->kind != MapEntry::Kind::kFrame ||
          entry->page != &page) {
        fail("page of " + cache->name() + " missing from the global map");
      }
      if (!memory().IsAllocated(page.frame)) {
        fail("page of " + cache->name() + " references a free frame");
      }
      // A resident page must have drained its cache's inbound stub slot.
      if (cache->inbound_stubs_.contains(page.offset / page_size())) {
        fail("resident page of " + cache->name() + " has undrained inbound stubs");
      }
      // Every mapping is real and points at our frame.
      for (const MappingRef& ref : page.mappings) {
        Result<MmuEntry> mmu_entry = mmu().Lookup(ref.as, ref.va);
        if (!mmu_entry.ok() || mmu_entry->frame != page.frame) {
          fail("stale MMU mapping for page of " + cache->name());
        }
      }
      // Threaded stubs point back.
      for (const CowStub* stub : page.stubs) {
        if (stub->src_page != &page) {
          fail("stub threading mismatch on " + cache->name());
        }
      }
    }
    // Parent/history links target live caches; history links have a matching
    // reverse parent link (the shape invariant, fragment-wise).
    cache->parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      bool live = false;
      for (const auto& [oid, other] : caches_) {
        if (other.get() == frag.value.cache) {
          live = true;
        }
      }
      if (!live) {
        fail("dangling parent link from " + cache->name());
      }
    });
    cache->histories_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      bool live = false;
      for (const auto& [oid, other] : caches_) {
        if (other.get() == frag.value.cache) {
          live = true;
        }
      }
      if (!live) {
        fail("dangling history link from " + cache->name());
        return;
      }
      // The history object must read back through us (or through a chain that
      // reaches us) for the linked range: check the immediate-parent property on
      // the fragment's first page.
      PvmCache* history = frag.value.cache;
      const auto* back = history->parents_.Find(frag.value.base);
      if (back == nullptr) {
        fail("history object " + history->name() + " has no parent link for range from " +
             cache->name());
      } else if (back->value.cache != cache.get()) {
        fail("history object " + history->name() + " does not read through " + cache->name());
      }
    });
  }

  // Pageout-queue consistency (DESIGN.md §15): the per-page queue tag matches
  // list membership exactly, and every queued page is a settled reclaim
  // candidate — unmapped, unpinned, not in transit, and resident.
  {
    std::unordered_set<const PageDesc*> queued;
    auto check_queue = [&](const std::list<PageDesc*>& q, PageQueue tag,
                           const char* name) {
      for (const PageDesc* page : q) {
        if (!all_pages.contains(page)) {
          fail(std::string(name) + " queue holds a freed page descriptor");
          continue;
        }
        if (!queued.insert(page).second) {
          fail(std::string(name) + " queue holds a page twice / on both queues");
        }
        if (page->queue != tag) {
          fail(std::string(name) + " queue member has a mismatched queue tag");
        }
        if (!page->mappings.empty() || page->pin_count > 0 || page->in_transit) {
          fail(std::string(name) + " queue holds an unsettled page");
        }
      }
    };
    check_queue(modified_queue_, PageQueue::kModified, "modified");
    check_queue(standby_queue_, PageQueue::kStandby, "standby");
    for (const PageDesc* page : all_pages) {
      if (page->queue != PageQueue::kNone && !queued.contains(page)) {
        fail("page tagged as queued is on neither pageout queue");
      }
    }
  }
  // Working-set consistency: index and FIFO agree, and every tracked page
  // really is mapped into that address space.
  for (const auto& [as, ws] : working_sets_) {
    if (ws.index.size() != ws.fifo.size()) {
      fail("working-set index/FIFO size mismatch");
    }
    for (const PageDesc* page : ws.fifo) {
      if (!all_pages.contains(page)) {
        fail("working set tracks a freed page descriptor");
        continue;
      }
      auto idx = ws.index.find(const_cast<PageDesc*>(page));
      if (idx == ws.index.end() || &**idx->second != page) {
        fail("working-set index entry missing or pointing at the wrong node");
      }
      bool mapped_here = false;
      for (const MappingRef& ref : page->mappings) {
        if (ref.as == as) {
          mapped_here = true;
        }
      }
      if (!mapped_here) {
        fail("working-set member has no mapping in its address space");
      }
    }
  }

  // Every global-map entry is consistent.
  self->map_.ForEach([&](const GlobalMap::Key& key, const MapEntry& entry) {
    auto cache_it = caches_.find(key.cache);
    if (cache_it == caches_.end()) {
      fail("global-map entry for a dead cache");
      return;
    }
    if (entry.kind == MapEntry::Kind::kFrame) {
      if (entry.page == nullptr || !all_pages.contains(entry.page)) {
        fail("global-map frame entry points at an unowned page descriptor");
      }
    } else if (entry.kind == MapEntry::Kind::kCowStub) {
      const CowStub& stub = *entry.cow;
      if (stub.cache != cache_it->second.get() ||
          stub.offset / page_size() != key.page_index) {
        fail("cow stub identity mismatch");
      }
      if (stub.src_page != nullptr) {
        if (!all_pages.contains(stub.src_page)) {
          fail("cow stub points at a freed source page");
        } else {
          bool threaded = false;
          for (const CowStub* t : stub.src_page->stubs) {
            if (t == &stub) {
              threaded = true;
            }
          }
          if (!threaded) {
            fail("cow stub not threaded on its source page");
          }
        }
      }
    }
  });

  return ok ? Status::kOk : Status::kBusError;
}

}  // namespace gvm
