// Page-out policy and the data-movement upcalls to segment drivers (Table 3).
//
// The data management policy (page-in and page-out decisions) belongs to the MM
// (section 3.3.3).  We implement a second-chance sweep over resident pages, with
// the referenced bits harvested from the MMU.  During a pullIn the slot holds a
// synchronization page stub; during a pushOut the page is flagged in_transit —
// both make concurrent accesses sleep until the transfer completes (section 4.1.2).
#include <cassert>
#include <chrono>
#include <thread>

#include "src/pvm/paged_vm.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

namespace {

// Deterministic exponential backoff before the (attempt+1)-th retry of an
// upcall.  Called with the manager lock RELEASED: sleeping under the lock would
// stall every other thread in the manager.
void RetryBackoff(uint64_t backoff_us, uint64_t attempt) {
  if (backoff_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us << attempt));
  }
}

}  // namespace

bool PagedVm::PageIsDirty(const PageDesc& page) const {
  if (page.sw_dirty) {
    return true;
  }
  for (const MappingRef& ref : page.mappings) {
    Result<MmuEntry> entry = mmu().Lookup(ref.as, ref.va);
    if (entry.ok() && entry->dirty) {
      return true;
    }
  }
  return false;
}

PageDesc* PagedVm::PickVictim() {
  // Second-chance sweep: two passes over all caches, rotated by a cursor so
  // successive evictions spread across the system.  The first pass clears
  // referenced bits and skips recently used pages; the second takes anything
  // evictable.
  for (int pass = 0; pass < 2; ++pass) {
    bool seen_cursor = clock_cache_ == 0;
    for (int wrap = 0; wrap < 2; ++wrap) {
      for (auto& [id, cache] : caches_) {
        if (!seen_cursor) {
          if (id == clock_cache_) {
            seen_cursor = true;
          }
          continue;
        }
        // A degraded segment cannot complete a pushOut, so spending per-page
        // work on it would only burn eviction passes on doomed upcalls: skip it
        // outright in the referenced-bit pass, and in the final pass consider
        // only its clean pages (freeable without any upcall).
        if (cache->degraded_ && pass == 0) {
          continue;
        }
        for (PageDesc& page : cache->pages_) {
          if (page.pin_count > 0 || page.in_transit) {
            continue;
          }
          if (cache->degraded_ && PageIsDirty(page)) {
            continue;
          }
          if (pass == 0) {
            bool referenced = false;
            for (const MappingRef& ref : page.mappings) {
              Result<bool> bit = mmu().TestAndClearReferenced(ref.as, ref.va);
              if (bit.ok() && *bit) {
                referenced = true;
              }
            }
            if (referenced) {
              continue;  // second chance
            }
          }
          clock_cache_ = id;
          return &page;
        }
      }
      if (clock_cache_ == 0) {
        break;  // single sweep covered everything
      }
      seen_cursor = true;  // wrap around to the beginning
    }
  }
  return nullptr;
}

bool PagedVm::BalanceFreeFrames(MutexLock& lock) {
  if (options_.low_water_frames == 0) {
    return false;
  }
  bool dropped = false;
  int safety = 0;
  while (true) {
    // Runs of clean drops batch into one gathered shootdown; their frames park
    // on the gather, so the target check counts free + parked.  The scope must
    // *close* (not merely flush) before PushOutPageLocked: a gather may never
    // span a manager-lock drop, or another thread entering the manager would
    // have its own shootdowns silently deferred onto ours.
    PageDesc* push_victim = nullptr;
    {
      TlbGatherScope gather(&tlb());
      while (memory().free_frames() + tlb().GatherParkedFrames() <
             options_.high_water_frames) {
        if (++safety > static_cast<int>(memory().frame_count()) * 4) {
          break;
        }
        PageDesc* victim = PickVictim();
        if (victim == nullptr) {
          break;  // everything is pinned or in transit
        }
        PvmCache& cache = *victim->cache;
        const bool dirty = PageIsDirty(*victim);
        // Descendant caches may still need this page's value after eviction: any
        // page covered by a history link, carrying stubs, or sitting in a cache
        // that has children must survive on the segment, so a "clean" drop is
        // only safe when the page is reproducible (from the segment or by
        // zero-fill).
        const bool reproducible =
            cache.pushed_pages_.contains(PageIndex(victim->offset)) ||
            (!cache.temporary_ && cache.parents_.Find(victim->offset) == nullptr);
        if (!dirty && reproducible) {
          ++mutable_stats().pages_paged_out;
          FreePage(victim);
          continue;
        }
        if (!dirty && victim->stubs.empty() &&
            cache.histories_.Find(victim->offset) == nullptr && cache.temporary_ &&
            cache.parents_.Find(victim->offset) == nullptr && !victim->sw_dirty) {
          // Never-written zero-fill page: drop it; a later miss re-zero-fills.
          ++mutable_stats().pages_paged_out;
          FreePage(victim);
          continue;
        }
        push_victim = victim;  // must be written out; commit the gather first
        break;
      }
    }
    if (push_victim == nullptr) {
      return dropped;  // target met, nothing evictable, or safety cap hit
    }
    // Must be written to the cache's own segment.
    Status s = PushOutPageLocked(lock, *push_victim->cache, *push_victim, /*free_after=*/true);
    dropped = true;  // PushOutPageLocked always releases the lock around the upcall
    if (s != Status::kOk) {
      GVM_LOG(Debug) << "pushOut failed during page-out: " << StatusName(s);
      return dropped;
    }
    ++mutable_stats().pages_paged_out;
  }
}

Status PagedVm::EnsureDriver(MutexLock& lock, PvmCache& cache) {
  if (cache.driver_ != nullptr) {
    return Status::kOk;
  }
  if (registry() == nullptr) {
    return Status::kNoSwap;  // nowhere to page this cache out to
  }
  if (cache.driver_requested_) {
    // Another thread is in the segmentCreate upcall; let the caller retry.
    return Status::kRetry;
  }
  cache.driver_requested_ = true;
  SegmentRegistry* reg = registry();
  lock.unlock();
  // "With the segmentCreate upcall, the MM may declare such a cache to the upper
  // layer, so that it can be swapped out."
  SegmentDriver* driver = reg->SegmentCreate(cache);
  lock.lock();
  cache.driver_requested_ = false;
  if (driver == nullptr) {
    return Status::kNoSwap;
  }
  cache.driver_ = driver;
  return Status::kOk;
}

Status PagedVm::PushOutPageLocked(MutexLock& lock, PvmCache& cache,
                                  PageDesc& page, bool free_after) {
  if (page.pin_count > 0) {
    return Status::kLocked;
  }
  if (cache.driver_ == nullptr) {
    Status s = EnsureDriver(lock, cache);
    if (s == Status::kRetry) {
      return Status::kOk;  // caller rescans; the concurrent upcall will finish
    }
    if (s != Status::kOk) {
      return s;
    }
    // The lock was dropped: `page` may have been freed or changed.  The caller
    // re-derives its scan state anyway; re-find the page to be safe.
    PageDesc* again = FindOwned(cache, page.offset);
    if (again != &page) {
      return Status::kOk;
    }
  }
  const SegOffset offset = page.offset;
  page.in_transit = true;
  // Unmap now: user writes racing the push would be silently lost otherwise.
  // NOTE: this destroys the MMU dirty bits — from here on the page's dirtiness
  // lives only in sw_dirty, so every failure path below must re-assert it.
  UnmapAllMappings(page);
  ++mutable_stats().push_outs;
  SegmentDriver* driver = cache.driver_;
  Status pushed = Status::kOk;
  PageDesc* again = nullptr;
  for (uint64_t attempt = 0;; ++attempt) {
    lock.unlock();
    if (attempt > 0) {
      RetryBackoff(options_.retry_backoff_us, attempt - 1);
    }
    pushed = driver->PushOut(cache, offset, page_size());
    lock.lock();
    // Re-derive: the driver ran arbitrary code (it normally calls CopyBack).
    again = FindOwned(cache, offset);
    if (again == nullptr) {
      // The driver used MoveBack (copyBack with removal); nothing left to do.
      sleepers_.WakeAll(StubKey(cache, offset), mu_);
      return pushed;
    }
    if (pushed != Status::kBusError || attempt >= options_.io_retry_limit) {
      break;
    }
    // Transient I/O error: the page is still ours, try again.
    again->in_transit = true;
    ++detail_.io_retries;
  }
  again->in_transit = false;
  if (pushed == Status::kOk) {
    cache.pushed_pages_.insert(PageIndex(offset));
    again->sw_dirty = false;
    // A successful write to the segment is proof of recovery.
    if (cache.pushout_failures_ > 0 || cache.degraded_) {
      // This push carried data that an earlier attempt failed to save (a
      // requeued page re-issued after the mapper came back).
      ++detail_.requests_reissued;
    }
    cache.pushout_failures_ = 0;
    cache.degraded_ = false;
    if (free_after && again->pin_count == 0) {
      FreePage(again);
    }
  } else {
    if (pushed == Status::kBusError) {
      ++detail_.io_permanent_failures;
    }
    if (pushed == Status::kPortDead) {
      // The mapper actor died mid-request.  Unlike a transient I/O error it
      // will fail every subsequent push until somebody recovers it, so degrade
      // immediately instead of burning the failure budget on a dead port.
      ++detail_.mapper_crashes_observed;
      cache.pushout_failures_ = options_.degrade_after_failures;
    }
    // Requeue, never drop: re-assert sw_dirty (the MMU bits died with the unmap
    // above, so without this a page whose dirtiness lived only in hardware bits
    // would look clean and could be clean-dropped — silent data loss).  The page
    // stays resident and a later sweep or Sync() retries the push.
    again->sw_dirty = true;
    ++detail_.pushout_requeues;
    if (++cache.pushout_failures_ >= options_.degrade_after_failures && !cache.degraded_) {
      cache.degraded_ = true;
      ++detail_.degraded_segments;
      GVM_LOG(Debug) << "cache " << cache.name() << " degraded after "
                     << cache.pushout_failures_ << " consecutive pushOut failures";
    }
  }
  sleepers_.WakeAll(StubKey(cache, offset), mu_);
  return pushed;
}

Status PagedVm::PullInLocked(MutexLock& lock, PvmCache& cache,
                             SegOffset page_offset, Access access) {
  assert(IsAligned(page_offset, page_size()));
  MapEntry* existing = FindEntry(cache, page_offset);
  if (existing != nullptr) {
    // Someone beat us to it (or a stub is already in place): just wait it out.
    if (existing->kind == MapEntry::Kind::kSyncStub ||
        (existing->kind == MapEntry::Kind::kFrame && existing->page->in_transit)) {
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(cache, page_offset), mu_);
    }
    return Status::kOk;
  }
  SegmentDriver* driver = cache.driver_;
  if (driver == nullptr) {
    return Status::kBusError;  // pushed_pages_ implies a driver; corrupted state
  }
  // "Before calling pullIn, the PVM places a synchronization page stub in the
  // global map for that page."
  map_.Insert(cache.id(), PageIndex(page_offset), MapEntry{.kind = MapEntry::Kind::kSyncStub, .page = nullptr, .cow = nullptr});
  ++mutable_stats().pull_ins;
  Status pulled = Status::kOk;
  for (uint64_t attempt = 0;; ++attempt) {
    lock.unlock();
    if (attempt > 0) {
      RetryBackoff(options_.retry_backoff_us, attempt - 1);
    }
    pulled = driver->PullIn(cache, page_offset, page_size(), access);
    lock.lock();
    if (pulled == Status::kOk) {
      break;
    }
    // The stub keeps the slot stable across attempts; concurrent accesses stay
    // asleep.  If the slot is no longer a stub the data arrived anyway (a racing
    // FillUp, or the driver filled before erroring): treat as recovered.
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry == nullptr || entry->kind != MapEntry::Kind::kSyncStub) {
      pulled = Status::kOk;
      break;
    }
    if (pulled != Status::kBusError || attempt >= options_.io_retry_limit) {
      break;
    }
    ++detail_.io_retries;
  }
  if (pulled != Status::kOk) {
    if (pulled == Status::kBusError) {
      ++detail_.io_permanent_failures;
    }
    if (pulled == Status::kPortDead) {
      // The mapper died under us.  Pulls carry no dirty data, so nothing is
      // lost and nothing needs requeueing — count the crash and fail the
      // faulting access fast; a re-fault after recovery will succeed.
      ++detail_.mapper_crashes_observed;
    }
    // Failed for good: remove the stub (if the driver did not fill after all) and
    // wake every sleeper so each re-derives state and observes a clean error
    // instead of hanging on a stub nobody will resolve.
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry != nullptr && entry->kind == MapEntry::Kind::kSyncStub) {
      map_.Erase(cache.id(), PageIndex(page_offset));
    }
    sleepers_.WakeAll(StubKey(cache, page_offset), mu_);
    return pulled == Status::kPortDead ? Status::kPortDead : Status::kBusError;
  }
  // Synchronous drivers have already called FillUp (replacing the stub).  An
  // asynchronous driver fills later from another thread: sleep until it does.
  for (int rounds = 0; rounds < 1 << 20; ++rounds) {
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry == nullptr || entry->kind != MapEntry::Kind::kSyncStub) {
      return Status::kOk;
    }
    ++detail_.sync_stub_waits;
    sleepers_.Wait(StubKey(cache, page_offset), mu_);
  }
  return Status::kBusError;
}

void PagedVm::NoteMapperRecovery(uint64_t records_replayed, uint64_t records_discarded) {
  MutexLock lock(mu_);
  ++detail_.recoveries_completed;
  detail_.journal_replays += records_replayed;
  detail_.journal_records_discarded += records_discarded;
}

}  // namespace gvm
