// Page-out policy and the data-movement upcalls to segment drivers (Table 3).
//
// The data management policy (page-in and page-out decisions) belongs to the MM
// (section 3.3.3).  We implement a second-chance sweep over resident pages, with
// the referenced bits harvested from the MMU.  During a pullIn the slot holds a
// synchronization page stub; during a pushOut the page is flagged in_transit —
// both make concurrent accesses sleep until the transfer completes (section 4.1.2).
#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <vector>

#include "src/pvm/paged_vm.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

namespace {

// Deterministic exponential backoff before the (attempt+1)-th retry of an
// upcall.  Called with the manager lock RELEASED: sleeping under the lock would
// stall every other thread in the manager.
void RetryBackoff(uint64_t backoff_us, uint64_t attempt) {
  if (backoff_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us << attempt));
  }
}

}  // namespace

bool PagedVm::PageIsDirty(const PageDesc& page) const {
  if (page.sw_dirty) {
    return true;
  }
  for (const MappingRef& ref : page.mappings) {
    Result<MmuEntry> entry = mmu().Lookup(ref.as, ref.va);
    if (entry.ok() && entry->dirty) {
      return true;
    }
  }
  return false;
}

bool PagedVm::FreeableWithoutIO(const PageDesc& page) const {
  if (PageIsDirty(page)) {
    return false;
  }
  PvmCache& cache = *page.cache;
  // Descendant caches may still need this page's value after eviction: any
  // page covered by a history link, carrying stubs, or sitting in a cache
  // that has children must survive on the segment, so a "clean" drop is only
  // safe when the page is reproducible (from the segment or an ancestor) ...
  if (cache.pushed_pages_.contains(PageIndex(page.offset)) ||
      (!cache.temporary_ && cache.parents_.Find(page.offset) == nullptr)) {
    return true;
  }
  // ... or is a never-written zero-fill page: a later miss re-zero-fills.
  return page.stubs.empty() && cache.histories_.Find(page.offset) == nullptr &&
         cache.temporary_ && cache.parents_.Find(page.offset) == nullptr &&
         !page.sw_dirty;
}

// ---------------------------------------------------------------------------
// Pageout queues and per-address-space working sets (DESIGN.md §15)
// ---------------------------------------------------------------------------

void PagedVm::QueueRemove(PageDesc& page) {
  switch (page.queue) {
    case PageQueue::kNone:
      return;
    case PageQueue::kModified:
      modified_queue_.erase(page.queue_pos);
      break;
    case PageQueue::kStandby:
      standby_queue_.erase(page.queue_pos);
      break;
  }
  page.queue = PageQueue::kNone;
}

void PagedVm::ReconsiderQueue(PageDesc& page) {
  QueueRemove(page);
  if (!page.mappings.empty() || page.pin_count > 0 || page.in_transit) {
    return;  // only unmapped, unpinned, settled pages are reclaim candidates
  }
  if (PageIsDirty(page)) {
    page.queue = PageQueue::kModified;
    page.queue_pos = modified_queue_.insert(modified_queue_.end(), &page);
  } else {
    page.queue = PageQueue::kStandby;
    page.queue_pos = standby_queue_.insert(standby_queue_.end(), &page);
  }
}

void PagedVm::WsNoteMapped(AsId as, PageDesc& page) {
  WorkingSet& ws = working_sets_[as];
  if (ws.index.contains(&page)) {
    return;  // already tracked: a second mapping of the same space
  }
  ws.index.emplace(&page, ws.fifo.insert(ws.fifo.end(), &page));
}

void PagedVm::WsNoteUnmapped(AsId as, PageDesc& page) {
  // The page leaves the set only when its last mapping into `as` is gone (one
  // page can be mapped at several addresses of one space).
  for (const MappingRef& ref : page.mappings) {
    if (ref.as == as) {
      return;
    }
  }
  auto ws_it = working_sets_.find(as);
  if (ws_it == working_sets_.end()) {
    return;
  }
  WorkingSet& ws = ws_it->second;
  auto it = ws.index.find(&page);
  if (it == ws.index.end()) {
    return;
  }
  ws.fifo.erase(it->second);
  ws.index.erase(it);
  // Keep an empty set alive while its thrash EWMA is still nonzero: the
  // throttle's memory of an aggressor must survive a full trim.
  if (ws.fifo.empty() && ws.refault_ewma_x1000 == 0) {
    working_sets_.erase(ws_it);
  }
}

void PagedVm::TrimPageFromAs(PageDesc& page, AsId as) {
  for (size_t i = page.mappings.size(); i > 0; --i) {
    if (page.mappings[i - 1].as == as) {
      // fires WsNoteUnmapped / ReconsiderQueue; demotes a covering huge span
      UnmapMapping(page, i - 1, DemoteReason::kPageout);
    }
  }
}

size_t PagedVm::ReclaimStandbyLocked(size_t target) {
  size_t freed = 0;
  // Standby reclaim is pure bookkeeping — no upcalls, so the gather (frames
  // park until one commit fence) may span the whole harvest.
  TlbGatherScope gather(&tlb());
  while (memory().free_frames() + tlb().GatherParkedFrames() < target &&
         !standby_queue_.empty()) {
    PageDesc* page = standby_queue_.front();
    QueueRemove(*page);
    if (page->pin_count > 0 || page->in_transit || !page->mappings.empty()) {
      continue;  // stale entry: rescued or pinned since it was enqueued
    }
    if (!FreeableWithoutIO(*page)) {
      // Dirtiness (or loss of reproducibility) discovered after enqueue:
      // reroute to the modified queue for a proper push.
      page->queue = PageQueue::kModified;
      page->queue_pos = modified_queue_.insert(modified_queue_.end(), page);
      continue;
    }
    ++mutable_stats().pages_paged_out;
    ++detail_.frames_reclaimed_daemon;
    FreePage(page);
    ++freed;
  }
  return freed;
}

void PagedVm::TrimWorkingSetsLocked() {
  // Snapshot the ids first: trimming erases exhausted sets out from under a
  // direct iteration.
  std::vector<AsId> spaces;
  spaces.reserve(working_sets_.size());
  for (const auto& [as, ws] : working_sets_) {
    spaces.push_back(as);
  }
  TlbGatherScope gather(&tlb());
  for (AsId as : spaces) {
    auto it = working_sets_.find(as);
    if (it == working_sets_.end()) {
      continue;
    }
    size_t limit = options_.working_set_limit_pages;  // 0 = uncapped
    const bool thrashing =
        options_.thrash_ewma_threshold > 0 &&
        it->second.refault_ewma_x1000 > options_.thrash_ewma_threshold;
    if (thrashing) {
      // Thrasher: cut to half its current size regardless of the static cap.
      const size_t half = it->second.fifo.size() / 2;
      limit = limit == 0 ? half : std::min(limit, half);
    } else if (limit == 0) {
      continue;
    }
    while (true) {
      auto re = working_sets_.find(as);
      if (re == working_sets_.end() || re->second.fifo.size() <= limit) {
        break;
      }
      PageDesc* cold = re->second.fifo.front();
      ++detail_.ws_trims;
      TrimPageFromAs(*cold, as);
      auto chk = working_sets_.find(as);
      if (chk != working_sets_.end() && !chk->second.fifo.empty() &&
          chk->second.fifo.front() == cold) {
        break;  // no progress (stale index entry): never spin
      }
    }
  }
}

PageDesc* PagedVm::PickVictim() {
  // Second-chance sweep: two passes over all caches, rotated by a cursor so
  // successive evictions spread across the system.  The first pass clears
  // referenced bits and skips recently used pages; the second takes anything
  // evictable.
  for (int pass = 0; pass < 2; ++pass) {
    bool seen_cursor = clock_cache_ == 0;
    for (int wrap = 0; wrap < 2; ++wrap) {
      for (auto& [id, cache] : caches_) {
        if (!seen_cursor) {
          if (id == clock_cache_) {
            seen_cursor = true;
          }
          continue;
        }
        // A degraded segment cannot complete a pushOut, so spending per-page
        // work on it would only burn eviction passes on doomed upcalls: skip it
        // outright in the referenced-bit pass, and in the final pass consider
        // only its clean pages (freeable without any upcall).
        if (cache->degraded_ && pass == 0) {
          continue;
        }
        for (PageDesc& page : cache->pages_) {
          if (page.pin_count > 0 || page.in_transit) {
            continue;
          }
          if (cache->degraded_ && PageIsDirty(page)) {
            continue;
          }
          if (pass == 0) {
            bool referenced = false;
            for (const MappingRef& ref : page.mappings) {
              Result<bool> bit = mmu().TestAndClearReferenced(ref.as, ref.va);
              if (bit.ok() && *bit) {
                referenced = true;
              }
            }
            if (referenced) {
              continue;  // second chance
            }
          }
          clock_cache_ = id;
          return &page;
        }
      }
      if (clock_cache_ == 0) {
        break;  // single sweep covered everything
      }
      seen_cursor = true;  // wrap around to the beginning
    }
  }
  return nullptr;
}

bool PagedVm::BalanceFreeFrames(MutexLock& lock) {
  if (options_.low_water_frames == 0) {
    return false;
  }
  // Single-sweeper gate: under pressure every faulting thread lands here at
  // once, and concurrent sweeps would stampede the clock — each evicting pages
  // the others are about to re-fault on, multiplying I/O for zero extra free
  // frames.  One thread sweeps; the rest sleep on its pass completing.
  if (sweeping_ && active_reclaimer_ != std::this_thread::get_id()) {
    ++detail_.sweep_waits;
    const uint64_t epoch = reclaim_epoch_;
    while (sweeping_ && reclaim_epoch_ == epoch) {
      sleepers_.Wait(kFrameWaitKey, mu_);
    }
    return true;  // the wait dropped the lock
  }
  const bool owned_gate = !sweeping_;
  if (owned_gate) {
    sweeping_ = true;
    active_reclaimer_ = std::this_thread::get_id();
    ++detail_.sweeps_started;
  }
  bool dropped = false;
  int safety = 0;
  while (true) {
    // Runs of clean drops batch into one gathered shootdown; their frames park
    // on the gather, so the target check counts free + parked.  The scope must
    // *close* (not merely flush) before PushOutPageLocked: a gather may never
    // span a manager-lock drop, or another thread entering the manager would
    // have its own shootdowns silently deferred onto ours.
    PageDesc* push_victim = nullptr;
    {
      TlbGatherScope gather(&tlb());
      while (memory().free_frames() + tlb().GatherParkedFrames() <
             options_.high_water_frames) {
        if (++safety > static_cast<int>(memory().frame_count()) * 4) {
          break;
        }
        PageDesc* victim = PickVictim();
        if (victim == nullptr) {
          break;  // everything is pinned or in transit
        }
        // Unmap before classifying: UnmapCollect folds the hardware dirty bit
        // into sw_dirty atomically with the translation's death.  Deciding
        // clean-vs-dirty while the page is still mapped would race a write
        // landing on a PTE the drop is about to destroy — the page would be
        // clean-dropped with acknowledged data only in its frame.
        UnmapAllMappings(*victim, DemoteReason::kPageout);
        if (FreeableWithoutIO(*victim)) {
          ++mutable_stats().pages_paged_out;
          FreePage(victim);
          continue;
        }
        push_victim = victim;  // must be written out; commit the gather first
        break;
      }
    }
    if (push_victim == nullptr) {
      break;  // target met, nothing evictable, or safety cap hit
    }
    // Must be written to the cache's own segment.
    Status s = PushOutPageLocked(lock, *push_victim->cache, *push_victim, /*free_after=*/true);
    dropped = true;  // PushOutPageLocked always releases the lock around the upcall
    if (s != Status::kOk) {
      GVM_LOG(Debug) << "pushOut failed during page-out: " << StatusName(s);
      break;
    }
    ++mutable_stats().pages_paged_out;
  }
  if (owned_gate) {
    // Pass complete (successful or not): bump the epoch and release every
    // thread parked on the gate, so each retries its allocation exactly once
    // per pass rather than sleeping forever on a failed sweep.
    sweeping_ = false;
    active_reclaimer_ = std::thread::id();
    ++reclaim_epoch_;
    sleepers_.WakeAll(kFrameWaitKey, mu_);
  }
  return dropped;
}

Status PagedVm::EnsureDriver(MutexLock& lock, PvmCache& cache) {
  if (cache.driver_ != nullptr) {
    return Status::kOk;
  }
  if (registry() == nullptr) {
    return Status::kNoSwap;  // nowhere to page this cache out to
  }
  if (cache.driver_requested_) {
    // Another thread is in the segmentCreate upcall; let the caller retry.
    return Status::kRetry;
  }
  cache.driver_requested_ = true;
  SegmentRegistry* reg = registry();
  lock.unlock();
  // "With the segmentCreate upcall, the MM may declare such a cache to the upper
  // layer, so that it can be swapped out."
  SegmentDriver* driver = reg->SegmentCreate(cache);
  lock.lock();
  cache.driver_requested_ = false;
  if (driver == nullptr) {
    return Status::kNoSwap;
  }
  cache.driver_ = driver;
  return Status::kOk;
}

Status PagedVm::PushOutPageLocked(MutexLock& lock, PvmCache& cache,
                                  PageDesc& page, bool free_after) {
  if (page.pin_count > 0) {
    return Status::kLocked;
  }
  QueueRemove(page);  // leaving the settled states; requeued on completion
  if (cache.driver_ == nullptr) {
    Status s = EnsureDriver(lock, cache);
    if (s == Status::kRetry) {
      return Status::kOk;  // caller rescans; the concurrent upcall will finish
    }
    if (s != Status::kOk) {
      return s;
    }
    // The lock was dropped: `page` may have been freed or changed.  The caller
    // re-derives its scan state anyway; re-find the page to be safe.
    PageDesc* again = FindOwned(cache, page.offset);
    if (again != &page) {
      return Status::kOk;
    }
  }
  const SegOffset offset = page.offset;
  page.in_transit = true;
  // Unmap now: user writes racing the push would be silently lost otherwise.
  // NOTE: this destroys the MMU dirty bits — from here on the page's dirtiness
  // lives only in sw_dirty, so every failure path below must re-assert it.
  UnmapAllMappings(page, DemoteReason::kPageout);
  ++mutable_stats().push_outs;
  SegmentDriver* driver = cache.driver_;
  Status pushed = Status::kOk;
  PageDesc* again = nullptr;
  for (uint64_t attempt = 0;; ++attempt) {
    lock.unlock();
    if (attempt > 0) {
      RetryBackoff(options_.retry_backoff_us, attempt - 1);
    }
    pushed = driver->PushOut(cache, offset, page_size());
    lock.lock();
    // Re-derive: the driver ran arbitrary code (it normally calls CopyBack).
    again = FindOwned(cache, offset);
    if (again == nullptr) {
      // The driver used MoveBack (copyBack with removal); nothing left to do.
      sleepers_.WakeAll(StubKey(cache, offset), mu_);
      return pushed;
    }
    if (pushed != Status::kBusError || attempt >= options_.io_retry_limit) {
      break;
    }
    // Transient I/O error: the page is still ours, try again.
    again->in_transit = true;
    ++detail_.io_retries;
  }
  again->in_transit = false;
  bool freed = false;
  if (pushed == Status::kOk) {
    cache.pushed_pages_.insert(PageIndex(offset));
    again->sw_dirty = false;
    // A successful write to the segment is proof of recovery.
    if (cache.pushout_failures_ > 0 || cache.degraded_) {
      // This push carried data that an earlier attempt failed to save (a
      // requeued page re-issued after the mapper came back).
      ++detail_.requests_reissued;
    }
    cache.pushout_failures_ = 0;
    cache.degraded_ = false;
    if (free_after && again->pin_count == 0) {
      FreePage(again);
      freed = true;
    }
  } else {
    if (pushed == Status::kBusError) {
      ++detail_.io_permanent_failures;
    }
    if (pushed == Status::kPortDead) {
      // The mapper actor died mid-request.  Unlike a transient I/O error it
      // will fail every subsequent push until somebody recovers it, so degrade
      // immediately instead of burning the failure budget on a dead port.
      ++detail_.mapper_crashes_observed;
      cache.pushout_failures_ = options_.degrade_after_failures;
    }
    // Requeue, never drop: re-assert sw_dirty (the MMU bits died with the unmap
    // above, so without this a page whose dirtiness lived only in hardware bits
    // would look clean and could be clean-dropped — silent data loss).  The page
    // stays resident and a later sweep or Sync() retries the push.
    again->sw_dirty = true;
    ++detail_.pushout_requeues;
    if (++cache.pushout_failures_ >= options_.degrade_after_failures && !cache.degraded_) {
      cache.degraded_ = true;
      ++detail_.degraded_segments;
      GVM_LOG(Debug) << "cache " << cache.name() << " degraded after "
                     << cache.pushout_failures_ << " consecutive pushOut failures";
    }
  }
  if (!freed) {
    // A pushed-and-kept page is a standby candidate; a failed push goes back
    // on the modified queue (sw_dirty was re-asserted above).
    ReconsiderQueue(*again);
  }
  sleepers_.WakeAll(StubKey(cache, offset), mu_);
  return pushed;
}

Status PagedVm::PullInLocked(MutexLock& lock, PvmCache& cache,
                             SegOffset page_offset, Access access) {
  assert(IsAligned(page_offset, page_size()));
  MapEntry* existing = FindEntry(cache, page_offset);
  if (existing != nullptr) {
    // Someone beat us to it (or a stub is already in place): just wait it out.
    if (existing->kind == MapEntry::Kind::kSyncStub ||
        (existing->kind == MapEntry::Kind::kFrame && existing->page->in_transit)) {
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(cache, page_offset), mu_);
    }
    return Status::kOk;
  }
  SegmentDriver* driver = cache.driver_;
  if (driver == nullptr) {
    return Status::kBusError;  // pushed_pages_ implies a driver; corrupted state
  }
  // "Before calling pullIn, the PVM places a synchronization page stub in the
  // global map for that page."
  map_.Insert(cache.id(), PageIndex(page_offset), MapEntry{.kind = MapEntry::Kind::kSyncStub, .page = nullptr, .cow = nullptr});
  ++mutable_stats().pull_ins;
  Status pulled = Status::kOk;
  for (uint64_t attempt = 0;; ++attempt) {
    lock.unlock();
    if (attempt > 0) {
      RetryBackoff(options_.retry_backoff_us, attempt - 1);
    }
    pulled = driver->PullIn(cache, page_offset, page_size(), access);
    lock.lock();
    if (pulled == Status::kOk) {
      break;
    }
    // The stub keeps the slot stable across attempts; concurrent accesses stay
    // asleep.  If the slot is no longer a stub the data arrived anyway (a racing
    // FillUp, or the driver filled before erroring): treat as recovered.
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry == nullptr || entry->kind != MapEntry::Kind::kSyncStub) {
      pulled = Status::kOk;
      break;
    }
    if (pulled != Status::kBusError || attempt >= options_.io_retry_limit) {
      break;
    }
    ++detail_.io_retries;
  }
  if (pulled != Status::kOk) {
    if (pulled == Status::kBusError) {
      ++detail_.io_permanent_failures;
    }
    if (pulled == Status::kPortDead) {
      // The mapper died under us.  Pulls carry no dirty data, so nothing is
      // lost and nothing needs requeueing — count the crash and fail the
      // faulting access fast; a re-fault after recovery will succeed.
      ++detail_.mapper_crashes_observed;
    }
    // Failed for good: remove the stub (if the driver did not fill after all) and
    // wake every sleeper so each re-derives state and observes a clean error
    // instead of hanging on a stub nobody will resolve.
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry != nullptr && entry->kind == MapEntry::Kind::kSyncStub) {
      map_.Erase(cache.id(), PageIndex(page_offset));
    }
    sleepers_.WakeAll(StubKey(cache, page_offset), mu_);
    return pulled == Status::kPortDead ? Status::kPortDead : Status::kBusError;
  }
  // Synchronous drivers have already called FillUp (replacing the stub).  An
  // asynchronous driver fills later from another thread: sleep until it does.
  for (int rounds = 0; rounds < 1 << 20; ++rounds) {
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry == nullptr || entry->kind != MapEntry::Kind::kSyncStub) {
      return Status::kOk;
    }
    ++detail_.sync_stub_waits;
    sleepers_.Wait(StubKey(cache, page_offset), mu_);
  }
  return Status::kBusError;
}

Status PagedVm::PushOutRunLocked(MutexLock& lock, PvmCache& cache, SegOffset start,
                                 size_t pages) {
  assert(pages >= 1);
  SegmentDriver* driver = cache.driver_;
  assert(driver != nullptr && "batch push requires a resolved driver");
  const size_t page_bytes = page_size();
  // Mark the whole run in transit before the lock drops: concurrent faults on
  // any page of the batch sleep on its stub key, and sweeps skip it.
  for (size_t i = 0; i < pages; ++i) {
    PageDesc* page = FindOwned(cache, start + i * page_bytes);
    assert(page != nullptr && "batch pages validated resident by the caller");
    QueueRemove(*page);
    page->in_transit = true;
    // NOTE: destroys the MMU dirty bits — failure paths below re-assert sw_dirty.
    UnmapAllMappings(*page, DemoteReason::kPageout);
  }
  mutable_stats().push_outs += pages;
  ++detail_.batch_pushes;
  detail_.batch_push_pages += pages;
  Status pushed = Status::kOk;
  for (uint64_t attempt = 0;; ++attempt) {
    lock.unlock();
    if (attempt > 0) {
      RetryBackoff(options_.retry_backoff_us, attempt - 1);
    }
    // ONE upcall for the whole run: the driver CopyBacks the span and issues a
    // single MapperWrite, which the journaling mapper commits as one record —
    // so the batch reaches the segment all-or-nothing.
    pushed = driver->PushOut(cache, start, pages * page_bytes);
    lock.lock();
    if (pushed != Status::kBusError || attempt >= options_.io_retry_limit) {
      break;
    }
    // Transient I/O error: re-assert in_transit on the survivors and retry.
    bool any_left = false;
    for (size_t i = 0; i < pages; ++i) {
      PageDesc* again = FindOwned(cache, start + i * page_bytes);
      if (again != nullptr) {
        again->in_transit = true;
        any_left = true;
      }
    }
    ++detail_.io_retries;
    if (!any_left) {
      break;  // the driver MoveBack'd every page; nothing to retry for
    }
  }
  // Per-page settlement, mirroring PushOutPageLocked.  Pages the driver took
  // via MoveBack are simply gone; the rest land on standby (pushed: the frame
  // is now reclaimable without I/O) or back on modified (failed: sw_dirty
  // re-asserted because the hardware dirty bits died with the unmap above).
  for (size_t i = 0; i < pages; ++i) {
    const SegOffset offset = start + i * page_bytes;
    PageDesc* again = FindOwned(cache, offset);
    if (again != nullptr) {
      again->in_transit = false;
      if (pushed == Status::kOk) {
        cache.pushed_pages_.insert(PageIndex(offset));
        again->sw_dirty = false;
      } else {
        again->sw_dirty = true;
        ++detail_.pushout_requeues;
      }
      ReconsiderQueue(*again);
    }
    sleepers_.WakeAll(StubKey(cache, offset), mu_);
  }
  if (pushed == Status::kOk) {
    if (cache.pushout_failures_ > 0 || cache.degraded_) {
      ++detail_.requests_reissued;
    }
    cache.pushout_failures_ = 0;
    cache.degraded_ = false;
  } else {
    if (pushed == Status::kBusError) {
      ++detail_.io_permanent_failures;
    }
    if (pushed == Status::kPortDead) {
      ++detail_.mapper_crashes_observed;
      cache.pushout_failures_ = options_.degrade_after_failures;
    }
    if (++cache.pushout_failures_ >= options_.degrade_after_failures && !cache.degraded_) {
      cache.degraded_ = true;
      ++detail_.degraded_segments;
      GVM_LOG(Debug) << "cache " << cache.name()
                     << " degraded after a failed batch pushOut";
    }
  }
  return pushed;
}

// ---------------------------------------------------------------------------
// The paging daemon (DESIGN.md §15)
// ---------------------------------------------------------------------------

bool PagedVm::DaemonReclaimPass(MutexLock& lock) {
  if (sweeping_ && active_reclaimer_ != std::this_thread::get_id()) {
    return false;  // a faulting thread is mid-sweep; it is doing the work
  }
  const bool owned_gate = !sweeping_;
  if (owned_gate) {
    sweeping_ = true;
    active_reclaimer_ = std::this_thread::get_id();
    ++detail_.sweeps_started;
  }
  ++detail_.daemon_passes;
  bool dropped = false;
  const size_t target = std::max<size_t>(options_.high_water_frames, 1);
  // Phase 1: harvest already-clean standby pages — zero I/O.
  ReclaimStandbyLocked(target);
  // Phase 2: demote over-limit and thrashing working sets (unmap only; the
  // unmap hooks feed the queues the next phases drain).
  TrimWorkingSetsLocked();
  // Phase 3: batched pushes off the modified queue.  The scan budget bounds
  // one pass's work: requeued failures and degraded segments must not spin it.
  FaultInjector* injector = memory().fault_injector();
  size_t scan_budget = modified_queue_.size();
  while (memory().free_frames() < target && !modified_queue_.empty() &&
         scan_budget-- > 0) {
    if (injector != nullptr &&
        injector->Check(FaultSite::kPageoutStall) != Status::kOk) {
      // Injected stall: skip this batch; the pages stay on the modified queue.
      ++detail_.pageout_stalls;
      break;
    }
    PageDesc* head = modified_queue_.front();
    QueueRemove(*head);
    if (head->pin_count > 0 || head->in_transit || !head->mappings.empty()) {
      continue;  // stale entry: rescued or pinned since it was enqueued
    }
    PvmCache& cache = *head->cache;
    if (FreeableWithoutIO(*head)) {
      ++mutable_stats().pages_paged_out;
      ++detail_.frames_reclaimed_daemon;
      FreePage(head);
      continue;
    }
    if (cache.degraded_) {
      // A dead mapper fails every push: park the page at the tail and move on;
      // recovery's Sync() re-drives the cache.
      head->queue = PageQueue::kModified;
      head->queue_pos = modified_queue_.insert(modified_queue_.end(), head);
      continue;
    }
    if (cache.driver_ == nullptr) {
      // No driver yet: the single-page path owns the segmentCreate dance.
      (void)PushOutPageLocked(lock, cache, *head, /*free_after=*/false);
      dropped = true;
      continue;
    }
    // Grow a contiguous same-cache run rightward from the head, so one upcall
    // (one IPC chunk, one WAL commit record) carries the whole cluster.
    size_t run = 1;
    const size_t max_run = std::max<size_t>(options_.pushout_batch_pages, 1);
    while (run < max_run) {
      PageDesc* next = FindOwned(cache, head->offset + run * page_size());
      if (next == nullptr || next->queue != PageQueue::kModified ||
          next->pin_count > 0 || next->in_transit || !next->mappings.empty()) {
        break;
      }
      QueueRemove(*next);
      ++run;
    }
    Status s = PushOutRunLocked(lock, cache, head->offset, run);
    dropped = true;  // PushOutRunLocked always releases the lock around the upcall
    if (s != Status::kOk) {
      break;  // the failure path requeued the pages; try again next pass
    }
  }
  // Phase 4: the pushes stocked the standby queue; harvest it.
  ReclaimStandbyLocked(target);
  // Phase 5: still below low water — fall back to the clock sweep, which also
  // reaches mapped pages the queues never see.
  if (memory().free_frames() < options_.low_water_frames) {
    if (BalanceFreeFrames(lock)) {
      dropped = true;
    }
  }
  if (owned_gate) {
    sweeping_ = false;
    active_reclaimer_ = std::thread::id();
    ++reclaim_epoch_;
    sleepers_.WakeAll(kFrameWaitKey, mu_);
  }
  return dropped;
}

void PagedVm::DaemonMain() {
  while (true) {
    {
      MutexLock latch(daemon_mu_);
      while (!daemon_kicked_ && !daemon_stop_) {
        daemon_cv_.Wait(daemon_mu_);
      }
      if (daemon_stop_) {
        return;
      }
      daemon_kicked_ = false;
    }
    MutexLock lock(mu_);
    ++detail_.daemon_wakeups;
    (void)DaemonReclaimPass(lock);
  }
}

void PagedVm::StartPageoutDaemon() {
  if (daemon_active_.load(std::memory_order_acquire)) {
    return;
  }
  daemon_kicker_.vm = this;
  {
    MutexLock latch(daemon_mu_);
    daemon_kicked_ = false;
    daemon_stop_ = false;
  }
  daemon_active_.store(true, std::memory_order_release);
  daemon_ = std::thread([this] { DaemonMain(); });
  memory().SetLowMemoryHook(&daemon_kicker_, options_.daemon_wake_frames);
}

void PagedVm::StopPageoutDaemon() {
  if (!daemon_active_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  memory().SetLowMemoryHook(nullptr, 0);
  {
    MutexLock latch(daemon_mu_);
    daemon_stop_ = true;
    daemon_cv_.NotifyAll();
  }
  if (daemon_.joinable()) {
    daemon_.join();
  }
  // A thrash-throttled faulter may still be parked on the frame-wait key
  // expecting the daemon to wake it; with the daemon gone, nobody else will.
  // One wake suffices: a throttled thread returns to its faulting CPU after a
  // single wait, and re-faults without throttling once daemon_active_ is off.
  MutexLock lock(mu_);
  sleepers_.WakeAll(kFrameWaitKey, mu_);
}

void PagedVm::KickPageoutDaemon() {
  if (!daemon_active_.load(std::memory_order_acquire)) {
    return;
  }
  MutexLock latch(daemon_mu_);
  daemon_kicked_ = true;
  daemon_cv_.NotifyOne();
}

void PagedVm::RunPageoutPassForTest() {
  MutexLock lock(mu_);
  (void)DaemonReclaimPass(lock);
}

size_t PagedVm::ModifiedQueueLength() const {
  MutexLock lock(mu_);
  return modified_queue_.size();
}

size_t PagedVm::StandbyQueueLength() const {
  MutexLock lock(mu_);
  return standby_queue_.size();
}

size_t PagedVm::WorkingSetPages(AsId as) const {
  MutexLock lock(mu_);
  auto it = working_sets_.find(as);
  return it == working_sets_.end() ? 0 : it->second.fifo.size();
}

void PagedVm::NoteMapperRecovery(uint64_t records_replayed, uint64_t records_discarded) {
  MutexLock lock(mu_);
  ++detail_.recoveries_completed;
  detail_.journal_replays += records_replayed;
  detail_.journal_records_discarded += records_discarded;
}

}  // namespace gvm
