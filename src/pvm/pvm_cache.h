// PvmCache: the PVM's cache descriptor (paper section 4.1.1, Figure 2), plus the
// deferred-copy tree links of section 4.2.
//
// A cache descriptor holds an identifier of its data segment and the list of its
// currently-cached real page descriptors.  For deferred copies it additionally
// carries two fragment lists (section 4.2.4 generalization):
//   * parents_   — where cache misses are resolved, walking towards the tree root;
//   * histories_ — which cache receives original page values when this cache (a
//                  copy source) modifies a page.
//
// All operations delegate to the owning PagedVm, which holds the manager-wide lock
// and the global map.
#ifndef GVM_SRC_PVM_PVM_CACHE_H_
#define GVM_SRC_PVM_PVM_CACHE_H_

#include <list>
#include <string>
#include <unordered_set>

#include "src/gmi/cache.h"
#include "src/gmi/segment_driver.h"
#include "src/pvm/fragment_map.h"
#include "src/pvm/page.h"

namespace gvm {

class PagedVm;

// Value type of the parent/history fragment lists: the target cache and the offset
// in it corresponding to the fragment's start.
struct LinkTarget {
  PvmCache* cache = nullptr;
  SegOffset base = 0;
  // Parent links only: resolve misses by materializing a private copy immediately
  // (copy-on-reference) instead of mapping the ancestor page read-only.
  bool copy_on_reference = false;

  LinkTarget Advanced(uint64_t delta) const {
    return LinkTarget{cache, base + delta, copy_on_reference};
  }
  bool operator==(const LinkTarget&) const = default;
};

class PvmCache final : public Cache {
 public:
  PvmCache(PagedVm& vm, CacheId id, std::string name, SegmentDriver* driver, bool temporary);
  ~PvmCache() override;

  // ---- gmi::Cache ----
  CacheId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  SegmentDriver* driver() const override { return driver_; }

  [[nodiscard]] Status CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size,
                CopyPolicy policy) override;
  [[nodiscard]] Status MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size) override;
  [[nodiscard]] Status Read(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status Write(SegOffset offset, const void* buffer, size_t size) override;
  [[nodiscard]] Status Destroy() override;

  [[nodiscard]] Status FillUp(SegOffset offset, const void* data, size_t size,
                Prot max_prot = Prot::kAll) override;
  [[nodiscard]] Status FillZero(SegOffset offset, size_t size) override;
  [[nodiscard]] Status CopyBack(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status MoveBack(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Sync() override;
  [[nodiscard]] Status Invalidate(SegOffset offset, size_t size) override;
  [[nodiscard]] Status SetProtection(SegOffset offset, size_t size, Prot max_prot) override;
  [[nodiscard]] Status LockInMemory(SegOffset offset, size_t size) override;
  [[nodiscard]] Status Unlock(SegOffset offset, size_t size) override;

  size_t ResidentPages() const override;
  size_t MappingCount() const override;

  // ---- Tree introspection (tests, Figure 3 reproduction) ----
  // The parent cache resolving misses at `offset`, or nullptr at the tree root.
  PvmCache* ParentAt(SegOffset offset) const;
  // The history object receiving originals for writes at `offset`, or nullptr.
  PvmCache* HistoryAt(SegOffset offset) const;
  bool temporary() const { return temporary_; }
  bool dying() const { return dying_; }
  // True while repeated pushOut failures have tripped this cache into degraded
  // mode: writes are refused with kBusError, reads are still served, and the
  // first successful pushOut (e.g. a Sync() once the mapper heals) recovers it.
  bool degraded() const;

 private:
  friend class PagedVm;

  PagedVm& vm_;
  const CacheId id_;
  std::string name_;
  SegmentDriver* driver_;  // lazily assigned for temporaries (segmentCreate upcall)
  const bool temporary_;   // zero-fill on a miss with no parent and no pushed page
  bool dying_ = false;     // destroyed by its user but kept for descendants (4.2.5)
  bool driver_requested_ = false;  // segmentCreate upcall already performed

  std::list<PageDesc> pages_;  // the doubly-linked list of cached real pages
  FragmentMap<LinkTarget> parents_;
  FragmentMap<LinkTarget> histories_;
  // Per-page stubs in their non-resident form ("pointer to the source local-cache
  // descriptor and its offset"), indexed by source page so they can be re-threaded
  // onto the page descriptor the moment the page becomes resident again.
  // Invariant: if (this, index) is resident, inbound_stubs_ has no entry for it.
  std::unordered_map<uint64_t, std::vector<CowStub*>> inbound_stubs_;
  // Page indices whose authoritative copy lives in this cache's own segment
  // (pushed out at least once).  Lets the miss walk decide between continuing to
  // an ancestor, pulling in from our segment, and zero-filling.
  std::unordered_set<uint64_t> pushed_pages_;
  size_t mapping_count_ = 0;  // regions currently mapping this cache
  int pushout_failures_ = 0;  // consecutive failed push-outs (reset on success)
  bool degraded_ = false;     // writes refused until a pushOut succeeds again
  // Bumped by every write-revoking setProtection and every invalidate (the
  // analogue of a TLB-shootdown generation count).  A getWriteAccess upcall
  // runs with the VM lock dropped; comparing this before and after tells the
  // write-fault path whether a recall raced the grant, in which case the
  // grant's local effect must be discarded and the access retried.
  uint64_t revoke_epoch_ = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_PVM_PVM_CACHE_H_
