// Explicit cache access (the read/write half of the unified cache, section 3.2)
// and the Table 4 cache-management operations: fillUp, copyBack, moveBack, flush,
// sync, invalidate, setProtection, lockInMemory.
#include <cassert>
#include <cstring>

#include "src/pvm/paged_vm.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

Status PagedVm::CacheRead(MutexLock& lock, PvmCache& cache,
                          SegOffset offset, void* buffer, size_t size) {
  const size_t page = page_size();
  auto* out = static_cast<std::byte*>(buffer);
  size_t done = 0;
  Status result = Status::kOk;
  while (done < size) {
    const SegOffset at = offset + done;
    const SegOffset page_off = AlignDown(at, page);
    size_t chunk = page - (at - page_off);
    if (chunk > size - done) {
      chunk = size - done;
    }
    bool settled = false;
    for (int rounds = 0; rounds < 4096 && !settled; ++rounds) {
      Lookup look = LookupValue(cache, page_off);
      switch (look.kind) {
        case Lookup::Kind::kPage:
          std::memcpy(out + done, memory().FrameData(look.page->frame) + (at - page_off),
                      chunk);
          settled = true;
          break;
        case Lookup::Kind::kZeroFill:
          // Reading never-written data returns zeroes without allocating a frame.
          std::memset(out + done, 0, chunk);
          settled = true;
          break;
        case Lookup::Kind::kPullIn: {
          Status s = PullInLocked(lock, *look.source, look.source_offset, Access::kRead);
          if (s != Status::kOk) {
            result = s;
            settled = true;
          }
          break;
        }
        case Lookup::Kind::kBlocked:
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(*look.source, look.source_offset), mu_);
          break;
      }
    }
    if (!settled && result == Status::kOk) {
      // Livelock cap exhausted with the page still blocked (a wedged transfer or
      // a waker that never resolves the stub).  Surface it: advancing `done`
      // here would silently skip a chunk that was never copied.
      result = Status::kBusy;
    }
    if (result != Status::kOk) {
      break;
    }
    done += chunk;
  }
  return result;
}

Status PagedVm::CacheWrite(MutexLock& lock, PvmCache& cache,
                           SegOffset offset, const void* buffer, size_t size) {
  if (cache.degraded_) {
    // Degraded segment: refuse new dirty data (see PushOutPageLocked).  Reads,
    // fillUp and the Sync()/Flush() recovery paths remain available.
    return Status::kBusError;
  }
  const size_t page = page_size();
  const auto* in = static_cast<const std::byte*>(buffer);
  size_t done = 0;
  Status result = Status::kOk;
  while (done < size) {
    const SegOffset at = offset + done;
    const SegOffset page_off = AlignDown(at, page);
    size_t chunk = page - (at - page_off);
    if (chunk > size - done) {
      chunk = size - done;
    }
    bool dropped = false;
    Result<PageDesc*> writable = EnsureWritablePage(lock, cache, page_off, &dropped);
    if (!writable.ok()) {
      result = writable.status();
      break;
    }
    std::memcpy(memory().FrameData((*writable)->frame) + (at - page_off), in + done, chunk);
    (*writable)->sw_dirty = true;
    done += chunk;
  }
  return result;
}

// ---------------------------------------------------------------------------
// fillUp / copyBack / moveBack (Table 4)
// ---------------------------------------------------------------------------

Status PagedVm::CacheFillUp(MutexLock& lock, PvmCache& cache,
                            SegOffset offset, const void* data, size_t size, Prot max_prot) {
  const size_t page = page_size();
  Status result = Status::kOk;
  if (!IsAligned(offset, page)) {
    return Status::kInvalidArgument;
  }
  const auto* in = static_cast<const std::byte*>(data);
  for (size_t done = 0; done < size && result == Status::kOk; done += page) {
    const SegOffset page_off = offset + done;
    const size_t chunk = size - done < page ? size - done : page;
    for (int rounds = 0;; ++rounds) {
      if (rounds > 4096) {
        result = Status::kBusError;
        break;
      }
      MapEntry* entry = FindEntry(cache, page_off);
      if (entry == nullptr || entry->kind == MapEntry::Kind::kSyncStub) {
        const bool was_stub = entry != nullptr;
        if (was_stub) {
          // Remove the stub so MaterializePage sees an empty slot; accesses keep
          // sleeping until we wake them with the page installed.
          map_.Erase(cache.id(), PageIndex(page_off));
        }
        Result<PageDesc*> fresh =
            MaterializePage(lock, cache, page_off, nullptr, /*dirty=*/false, max_prot);
        if (!fresh.ok() && fresh.status() != Status::kRetry) {
          // Restore the stub so waiting threads are not stranded on a free slot.
          if (was_stub && FindEntry(cache, page_off) == nullptr) {
            map_.Insert(cache.id(), PageIndex(page_off),
                        MapEntry{.kind = MapEntry::Kind::kSyncStub, .page = nullptr, .cow = nullptr});
          }
          result = fresh.status();
          break;
        }
        // Whether or not the lock dropped, the page (ours or a competitor's) is
        // now installed; loop to write the bytes through the entry.
        continue;
      }
      if (entry->kind == MapEntry::Kind::kCowStub) {
        // A fill overrides a deferred-copy placeholder.
        UnlinkStub(entry->cow.get());
        map_.Erase(cache.id(), PageIndex(page_off));
        continue;
      }
      PageDesc* page_desc = entry->page;
      if (page_desc->in_transit) {
        ++detail_.sync_stub_waits;
        sleepers_.Wait(StubKey(cache, page_off), mu_);
        continue;
      }
      std::byte* frame = memory().FrameData(page_desc->frame);
      std::memcpy(frame, in + done, chunk);
      if (chunk < page) {
        std::memset(frame + chunk, 0, page - chunk);
      }
      page_desc->max_prot = max_prot;
      page_desc->sw_dirty = false;  // the segment is the origin of these bytes
      sleepers_.WakeAll(StubKey(cache, page_off), mu_);
      break;
    }
  }
  return result;
}

Status PagedVm::CacheCopyBack(MutexLock& lock, PvmCache& cache,
                              SegOffset offset, void* buffer, size_t size, bool remove) {
  (void)lock;
  const size_t page = page_size();
  auto* out = static_cast<std::byte*>(buffer);
  Status result = Status::kOk;
  if (!IsAligned(offset, page)) {
    result = Status::kInvalidArgument;
  }
  for (size_t done = 0; done < size && result == Status::kOk; done += page) {
    const SegOffset page_off = offset + done;
    const size_t chunk = size - done < page ? size - done : page;
    PageDesc* owned = FindOwned(cache, page_off);
    if (owned != nullptr) {
      // copyBack is how the driver reads data during a pushOut; the page being
      // in_transit is the expected state, not a conflict.
      std::memcpy(out + done, memory().FrameData(owned->frame), chunk);
      if (remove && owned->pin_count == 0) {
        FreePage(owned);
      }
    } else {
      std::memset(out + done, 0, chunk);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// flush / sync / invalidate / setProtection / lock (Table 4)
// ---------------------------------------------------------------------------

Status PagedVm::CacheFlush(MutexLock& lock, PvmCache& cache, bool discard) {
  // Push out every modified page; with `discard`, drop all pages afterwards.
  // Push-outs release the lock, so the scan restarts from a cursor each round.
  const size_t page = page_size();
  SegOffset cursor = 0;
  bool first = true;
  for (int rounds = 0; rounds < 1 << 20; ++rounds) {
    PageDesc* target = nullptr;
    SegOffset transit_offset = 0;
    bool transit_seen = false;
    for (PageDesc& candidate : cache.pages_) {
      if (candidate.in_transit) {
        // A push already in flight may still fail and requeue the page dirty,
        // so flush/sync may not return before it settles.  (A recall that
        // acked past an in-flight eviction push would let the directory
        // demote the owner while its dirty bytes are still on the wire — the
        // late writeback would then be refused and the data stranded.)
        transit_seen = true;
        transit_offset = candidate.offset;
        continue;
      }
      if (!first && candidate.offset < cursor) {
        continue;
      }
      if (PageIsDirty(candidate) || (discard && candidate.pin_count == 0)) {
        if (target == nullptr || candidate.offset < target->offset) {
          target = &candidate;
        }
      }
    }
    if (target == nullptr) {
      if (!transit_seen) {
        // Every dirty page is home.  That is the exact guarantee degraded mode
        // exists to restore, so a completed flush recovers the cache even when
        // it had nothing left to push — e.g. a site whose in-flight push-outs
        // died with its machine recovers with an empty cache, and the sync it
        // issues after rejoining must clear the flag, not no-op past it.
        cache.pushout_failures_ = 0;
        cache.degraded_ = false;
        return Status::kOk;
      }
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(cache, transit_offset), mu_);
      // The settled page may be dirty again (failed push) and may sit below
      // the cursor: rescan from the top.
      first = true;
      cursor = 0;
      continue;
    }
    cursor = target->offset + page;
    first = false;
    if (PageIsDirty(*target)) {
      Status s = PushOutPageLocked(lock, cache, *target, /*free_after=*/discard);
      if (s != Status::kOk) {
        return s;
      }
    } else if (discard && target->pin_count == 0) {
      FreePage(target);
    }
  }
  return Status::kBusError;
}

Status PagedVm::CacheInvalidate(MutexLock& lock, PvmCache& cache,
                                SegOffset offset, size_t size) {
  const size_t page = page_size();
  ++cache.revoke_epoch_;  // any copy in this range is revoked from here on
  Status result = Status::kOk;
  for (SegOffset at = AlignDown(offset, page); at < offset + size; at += page) {
    // Invalidation revokes this cache's copy; per-page stubs sourcing from it
    // keep their snapshot by materializing first.
    Status secured = MaterializeStubsOf(lock, cache, at);
    if (secured != Status::kOk) {
      result = secured;
      break;
    }
    for (int rounds = 0;; ++rounds) {
      if (rounds > 4096) {
        result = Status::kBusError;
        break;
      }
      MapEntry* entry = FindEntry(cache, at);
      if (entry == nullptr) {
        break;
      }
      if (entry->kind == MapEntry::Kind::kFrame) {
        if (entry->page->in_transit) {
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(cache, at), mu_);
          continue;
        }
        if (entry->page->pin_count > 0) {
          result = Status::kLocked;
          break;
        }
        FreePage(entry->page);
        break;
      }
      if (entry->kind == MapEntry::Kind::kCowStub) {
        UnlinkStub(entry->cow.get());
        map_.Erase(cache.id(), PageIndex(at));
        break;
      }
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(cache, at), mu_);
    }
    if (result != Status::kOk) {
      break;
    }
    // Note: pushed_pages_ is NOT cleared — the segment (swap or mapper) remains
    // the authoritative holder of previously saved data, and the re-pull after an
    // invalidation goes through the driver either way.
  }
  return result;
}

Status PagedVm::CacheSetProtection(MutexLock& lock, PvmCache& cache,
                                   SegOffset offset, size_t size, Prot max_prot) {
  (void)lock;
  const size_t page = page_size();
  if (!ProtAllows(max_prot, Prot::kWrite)) {
    ++cache.revoke_epoch_;  // a demote: stale write grants must not resurrect
  }
  for (SegOffset at = AlignDown(offset, page); at < offset + size; at += page) {
    if (PageDesc* owned = FindOwned(cache, at)) {
      owned->max_prot = max_prot;
      // Re-derive every mapping's hardware protection under the new cap.
      for (const MappingRef& ref : owned->mappings) {
        bool foreign = ref.via_cache != owned->cache;
        (void)mmu().Protect(ref.as, ref.va, EffectiveProt(*ref.region, *owned, foreign));
      }
    }
  }
  return Status::kOk;
}

Status PagedVm::CacheLockRange(MutexLock& lock, PvmCache& cache,
                               SegOffset offset, size_t size, bool lock_pages) {
  const size_t page = page_size();
  for (SegOffset at = AlignDown(offset, page); at < offset + size; at += page) {
    if (!lock_pages) {
      if (PageDesc* owned = FindOwned(cache, at)) {
        if (owned->pin_count > 0) {
          owned->pin_count--;
        }
      }
      continue;
    }
    // lockInMemory "may cause pullIns": resolve each page, then pin it.
    for (int rounds = 0;; ++rounds) {
      if (rounds > 4096) {
        return Status::kBusError;
      }
      bool dropped = false;
      Result<PageDesc*> resolved = ResolveValue(lock, cache, at, &dropped);
      if (!resolved.ok()) {
        return resolved.status();
      }
      if (dropped) {
        continue;
      }
      (*resolved)->pin_count++;
      break;
    }
  }
  return Status::kOk;
}

}  // namespace gvm
