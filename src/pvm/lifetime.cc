// Cache lifetime: destruction, "dying" sources kept alive for their descendants
// (section 4.2.5: "remaining unmodified source data must be kept until the copy is
// deleted"), reaping, and the collapse of chains of inactive history objects (the
// garbage collection the paper contrasts with Mach's shadow-object GC).
#include <algorithm>
#include <cassert>
#include <vector>

#include "src/pvm/paged_vm.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

bool PagedVm::CacheHasDependents(const PvmCache& cache) const {
  // Any cache whose parent links target `cache`?
  for (const auto& [id, other] : caches_) {
    if (other.get() == &cache) {
      continue;
    }
    bool depends = false;
    other->parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (frag.value.cache == &cache) {
        depends = true;
      }
    });
    if (depends) {
      return true;
    }
  }
  // Any per-page stub sourcing from `cache` (resident or not)?
  if (!cache.inbound_stubs_.empty()) {
    return true;
  }
  for (const PageDesc& page : cache.pages_) {
    if (!page.stubs.empty()) {
      return true;
    }
  }
  return false;
}

void PagedVm::DropTreeLinksTo(PvmCache& cache) {
  // Remove every history link in the system that targets `cache`: once it is gone,
  // no source owes it original values any more.  The sources' pages become
  // writable again lazily, on their next write fault.
  for (auto& [id, other] : caches_) {
    if (other.get() == &cache) {
      continue;
    }
    std::vector<std::pair<SegOffset, uint64_t>> stale;
    other->histories_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (frag.value.cache == &cache) {
        stale.emplace_back(frag.start, frag.size);
      }
    });
    for (const auto& [start, size] : stale) {
      other->histories_.Erase(start, size);
    }
  }
}

void PagedVm::ReleasePages(PvmCache& cache) {
  // Teardown batch: every page's unmaps publish under one gather, the frames
  // park on it, and a single commit fence retires the lot before recycling.
  TlbGatherScope gather(&tlb());
  while (!cache.pages_.empty()) {
    FreePage(&cache.pages_.front());
  }
}

Status PagedVm::DestroyCacheLocked(MutexLock& lock, PvmCache& cache) {
  if (cache.mapping_count_ > 0) {
    return Status::kBusy;
  }
  if (cache.dying_) {
    return Status::kOk;  // double destroy is idempotent
  }
  // Push modified data of permanent (driver-backed, non-temporary) caches back to
  // their segment: "at the time of a cache ... destruction, the MM needs to save a
  // fragment of cached data" (section 3.3.3).  Temporary caches just evaporate.
  if (!cache.temporary_ && cache.driver_ != nullptr) {
    Status s = CacheFlush(lock, cache, /*discard=*/false);
    if (s != Status::kOk) {
      return s;
    }
  }
  cache.dying_ = true;
  ReapIfUnreferenced(lock, cache);
  return Status::kOk;
}

void PagedVm::ReapIfUnreferenced(MutexLock& lock, PvmCache& cache) {
  if (!cache.dying_ || cache.mapping_count_ > 0) {
    return;
  }
  if (CacheHasDependents(cache)) {
    if (options_.collapse_dying_caches) {
      TryCollapse(lock, cache);
    }
    return;
  }
  // Nobody reads through this cache any more: free it, then re-examine the caches
  // it read through — they may have been waiting on us.
  std::vector<PvmCache*> former_parents;
  cache.parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
    former_parents.push_back(frag.value.cache);
  });
  cache.parents_.Clear();
  DropTreeLinksTo(cache);
  {
    // One gathered shootdown for the whole cache teardown (see ReleasePages).
    TlbGatherScope gather(&tlb());
    while (!cache.pages_.empty()) {
      FreePage(&cache.pages_.front());
    }
  }
  // Purge the stub entries this cache still owns (deferred-copy placeholders whose
  // value was never demanded), unlinking each from its source.
  CacheId id = cache.id();
  map_.EraseCacheEntries(id, [this](MapEntry& entry) {
    if (entry.kind == MapEntry::Kind::kCowStub) {
      UnlinkStub(entry.cow.get());
    }
  });
  ++detail_.caches_reaped;
  caches_.erase(id);  // destroys `cache`
  for (PvmCache* parent : former_parents) {
    auto it = std::find_if(caches_.begin(), caches_.end(),
                           [parent](const auto& kv) { return kv.second.get() == parent; });
    if (it != caches_.end()) {
      ReapIfUnreferenced(lock, *parent);
    }
  }
}

bool PagedVm::TryCollapse(MutexLock& lock, PvmCache& cache) {
  // Merge a dying cache into its single remaining child: transfer its pages to the
  // child (where the child lacks its own version) and splice the child's parent
  // links past it.  This is the analogue of Mach's shadow collapse, needed only in
  // the "process forks and exits while its child continues" pattern (section 4.2.5).
  if (!cache.dying_ || cache.mapping_count_ > 0) {
    return false;
  }
  // Stub dependents pin the cache (their value identity lives here).
  if (!cache.inbound_stubs_.empty()) {
    return false;
  }
  for (const PageDesc& page : cache.pages_) {
    if (page.stubs.empty() == false || page.pin_count > 0 || page.in_transit) {
      return false;
    }
  }
  // Pages already pushed to our segment cannot be handed to the child cheaply.
  if (!cache.pushed_pages_.empty()) {
    return false;
  }
  // Deferred-copy placeholders we own define our value at those offsets; the child
  // reads them through us, so splicing us out would corrupt its view.
  if (map_.CacheHasEntryOfKind(cache.id(), MapEntry::Kind::kCowStub)) {
    return false;
  }
  // Exactly one child?
  PvmCache* child = nullptr;
  for (const auto& [id, other] : caches_) {
    if (other.get() == &cache) {
      continue;
    }
    bool depends = false;
    other->parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (frag.value.cache == &cache) {
        depends = true;
      }
    });
    if (depends) {
      if (child != nullptr) {
        return false;  // multiple children: the tree structure is still needed
      }
      child = other.get();
    }
  }
  if (child == nullptr) {
    return false;  // ReapIfUnreferenced handles the no-dependent case
  }

  // Collect the child's fragments that read through us, as (child range -> our
  // base offset) triples.
  struct Window {
    SegOffset child_start;
    uint64_t size;
    SegOffset our_base;
    bool copy_on_reference;
  };
  std::vector<Window> windows;
  child->parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
    if (frag.value.cache == &cache) {
      windows.push_back(Window{frag.start, frag.size, frag.value.base,
                               frag.value.copy_on_reference});
    }
  });

  // Transfer our pages into the child where the child has no version of its own.
  std::vector<PageDesc*> to_move;
  for (PageDesc& page : cache.pages_) {
    to_move.push_back(&page);
  }
  // The per-page unmaps (moved pages and freed unreachable/diverged pages)
  // batch into one gathered shootdown; no lock is dropped in the loop.
  TlbGatherScope gather(&tlb());
  for (PageDesc* page : to_move) {
    const Window* window = nullptr;
    for (const Window& w : windows) {
      if (page->offset >= w.our_base && page->offset < w.our_base + w.size) {
        window = &w;
        break;
      }
    }
    if (window == nullptr) {
      FreePage(page);  // unreachable data
      continue;
    }
    SegOffset child_off = window->child_start + (page->offset - window->our_base);
    if (FindEntry(*child, child_off) != nullptr ||
        child->pushed_pages_.contains(PageIndex(child_off))) {
      FreePage(page);  // the child already diverged here
      continue;
    }
    UnmapAllMappings(*page);
    map_.Erase(cache.id(), PageIndex(page->offset));
    page->cache = child;
    page->offset = child_off;
    page->sw_dirty = true;
    child->pages_.splice(child->pages_.end(), cache.pages_, page->self);
    page->self = std::prev(child->pages_.end());
    map_.Insert(child->id(), PageIndex(child_off),
                MapEntry{.kind = MapEntry::Kind::kFrame, .page = page, .cow = nullptr});
    AdoptInboundStubs(*child, *page);
  }

  // Splice the child's links past us: compose each window with our own parents.
  for (const Window& w : windows) {
    child->parents_.Erase(w.child_start, w.size);
    for (const auto& ours : cache.parents_.Overlapping(w.our_base, w.size)) {
      SegOffset child_start = w.child_start + (ours.start - w.our_base);
      child->parents_.Insert(child_start, ours.size,
                             LinkTarget{ours.value.cache, ours.value.base,
                                        ours.value.copy_on_reference ||
                                            w.copy_on_reference});
    }
  }

  // History links in *other* caches targeting us must be retargeted to the child:
  // we were the snapshot-holder for the child, so originals that a source would
  // have pushed into us now belong directly in the child.  Ranges the child does
  // not read through us have no reader left and are dropped.
  for (auto& [id, other] : caches_) {
    if (other.get() == &cache) {
      continue;
    }
    std::vector<FragmentMap<LinkTarget>::Fragment> pointing;
    other->histories_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
      if (frag.value.cache == &cache) {
        pointing.push_back(frag);
      }
    });
    for (const auto& frag : pointing) {
      other->histories_.Erase(frag.start, frag.size);
      // frag maps other's [start, start+size) to our offsets [base, base+size).
      for (const Window& w : windows) {
        SegOffset lo = frag.value.base > w.our_base ? frag.value.base : w.our_base;
        SegOffset hi_a = frag.value.base + frag.size;
        SegOffset hi_b = w.our_base + w.size;
        SegOffset hi = hi_a < hi_b ? hi_a : hi_b;
        if (lo >= hi) {
          continue;
        }
        SegOffset other_start = frag.start + (lo - frag.value.base);
        SegOffset child_start = w.child_start + (lo - w.our_base);
        other->histories_.Insert(other_start, hi - lo, LinkTarget{child, child_start, false});
      }
    }
  }

  // Our own history links are inert (a dying cache has no mappings, hence no
  // writes).  Cascade-reap our former parents that might only have been kept
  // alive by us.
  std::vector<PvmCache*> former_parents;
  cache.parents_.ForEach([&](const FragmentMap<LinkTarget>::Fragment& frag) {
    former_parents.push_back(frag.value.cache);
  });
  cache.histories_.Clear();
  cache.parents_.Clear();
  ++detail_.caches_collapsed;
  CacheId id = cache.id();
  caches_.erase(id);
  for (PvmCache* parent : former_parents) {
    auto it = std::find_if(caches_.begin(), caches_.end(),
                           [parent](const auto& kv) { return kv.second.get() == parent; });
    if (it != caches_.end()) {
      ReapIfUnreferenced(lock, *parent);
    }
  }
  return true;
}

}  // namespace gvm
