// PagedVm core: construction, cache creation, page materialization, the global-map
// miss walk (section 4.2.1) and the page-fault algorithms (sections 4.1.2, 4.2.2,
// 4.2.3, 4.3).
#include "src/pvm/paged_vm.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

namespace {

// Resolves the kAutoReserve sentinel: no reserve without a reclaimer entitled
// to it — the reserve only exists to break the pageout-needs-memory deadlock,
// so it is sized iff the daemon runs.
PagedVm::Options ResolvePressureOptions(PagedVm::Options options,
                                        const PhysicalMemory& memory) {
  if (options.emergency_reserve_frames == PagedVm::Options::kAutoReserve) {
    options.emergency_reserve_frames =
        options.pageout_daemon ? std::max<size_t>(2, memory.frame_count() / 64) : 0;
  }
  return options;
}

}  // namespace

PagedVm::PagedVm(PhysicalMemory& memory, Mmu& mmu, Options options)
    : BaseMm(memory, mmu, options.enable_tlb, options.shootdown_fence),
      options_(ResolvePressureOptions(options, memory)) {
  daemon_kicker_.vm = this;
  if (options_.emergency_reserve_frames > 0) {
    memory.SetEmergencyReserve(options_.emergency_reserve_frames);
  }
  if (options_.pageout_daemon) {
    StartPageoutDaemon();
  }
}

PagedVm::~PagedVm() {
  // Quiesce the daemon before any state it walks is dismantled.
  StopPageoutDaemon();
  // Tear down all caches without push-outs: the simulation is ending.
  for (auto& [id, cache] : caches_) {
    ReleasePages(*cache);
  }
  caches_.clear();
}

Result<Cache*> PagedVm::CacheCreate(SegmentDriver* driver, std::string name) {
  MutexLock lock(mu_);
  Result<PvmCache*> cache =
      CreateCacheLocked(driver, std::move(name), /*temporary=*/driver == nullptr);
  if (!cache.ok()) {
    return cache.status();
  }
  return static_cast<Cache*>(*cache);
}

Result<PvmCache*> PagedVm::CreateCacheLocked(SegmentDriver* driver, std::string name,
                                             bool temporary) {
  CacheId id = next_cache_id_++;
  auto cache = std::make_unique<PvmCache>(*this, id, std::move(name), driver, temporary);
  PvmCache* raw = cache.get();
  caches_.emplace(id, std::move(cache));
  return raw;
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

uint64_t PagedVm::StubKey(const PvmCache& cache, SegOffset offset) const {
  // Collisions only cause spurious wakeups; waiters always re-check state.
  return cache.id() * 0x9e3779b97f4a7c15ull ^ (offset / page_size());
}

MapEntry* PagedVm::FindEntry(PvmCache& cache, SegOffset page_offset) {
  return map_.Find(cache.id(), PageIndex(page_offset));
}

PageDesc* PagedVm::FindOwned(PvmCache& cache, SegOffset page_offset) {
  MapEntry* entry = FindEntry(cache, page_offset);
  if (entry == nullptr || entry->kind != MapEntry::Kind::kFrame) {
    return nullptr;
  }
  return entry->page;
}

Result<FrameIndex> PagedVm::AllocateFrame(MutexLock& lock,
                                          bool* dropped_lock) {
  // The reclaim path draws from the emergency reserve, so page-out can never
  // deadlock on needing a frame to free frames.
  const PhysicalMemory::AllocClass cls = AllocClassForThisThread();
  bool force_slow = false;
  if (FaultInjector* injector = memory().fault_injector()) {
    if (injector->Check(FaultSite::kLowMemory) != Status::kOk) {
      // Injected pressure: skip the fast path once, forcing this allocation
      // through the full reclaim machinery even when frames are plentiful.
      force_slow = true;
      ++detail_.low_memory_faults;
    }
  }
  if (!force_slow) {
    Result<FrameIndex> frame = memory().AllocateFrame(cls);
    if (frame.ok()) {
      // Keep the pool topped up in the background of this allocation, so that bursts
      // of materialization do not hit the empty-pool path on every page.
      if (options_.low_water_frames > 0 &&
          memory().free_frames() < options_.low_water_frames) {
        if (daemon_active_.load(std::memory_order_acquire)) {
          // A background reclaimer exists: wake it instead of paying for the
          // sweep on the fault path.
          KickPageoutDaemon();
        } else if (BalanceFreeFrames(lock)) {
          *dropped_lock = true;
        }
      }
      return frame;
    }
  }
  if (options_.low_water_frames == 0) {
    // Pager disabled: hard OOM is the configured contract.
    return force_slow ? Result<FrameIndex>(Status::kNoMemory)
                      : memory().AllocateFrame(cls);
  }
  // Bounded eviction-pressure loop: a dry pool is often transient (every frame
  // momentarily pinned or in transit, or a flaky allocation fault).  Each round
  // either runs a reclaim pass or — when another thread is already sweeping —
  // sleeps on its completion, so kNoMemory surfaces only after reclaim has
  // *demonstrably* failed to produce a frame this many times.
  for (uint64_t failed_rounds = 0;;) {
    if (daemon_active_.load(std::memory_order_acquire)) {
      KickPageoutDaemon();
    }
    if (BalanceFreeFrames(lock)) {
      *dropped_lock = true;
    }
    Result<FrameIndex> frame = memory().AllocateFrame(cls);
    if (frame.ok()) {
      return frame;
    }
    if (++failed_rounds > options_.alloc_retry_limit) {
      return frame;
    }
    ++detail_.alloc_pressure_retries;
    // Still dry after a pager round: typically every eviction candidate is
    // pinned or in transit behind another thread's pushOut.  Yield the lock so
    // that thread can complete and free its frame — retrying without yielding
    // exhausts the budget while starving the only thread that could refill the
    // pool (guaranteed on a single-core host).
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
    *dropped_lock = true;
  }
}

Result<PageDesc*> PagedVm::MaterializePage(MutexLock& lock, PvmCache& cache,
                                           SegOffset page_offset, const std::byte* bytes,
                                           bool dirty, Prot max_prot) {
  assert(IsAligned(page_offset, page_size()));
  bool dropped = false;
  Result<FrameIndex> frame = AllocateFrame(lock, &dropped);
  if (!frame.ok()) {
    return frame.status();
  }
  if (dropped && FindEntry(cache, page_offset) != nullptr) {
    // Someone else installed an entry while we were evicting; let the caller
    // re-derive what to do.
    memory().FreeFrame(*frame);
    return Status::kRetry;
  }
  if (bytes != nullptr) {
    std::memcpy(memory().FrameData(*frame), bytes, page_size());
  } else {
    memory().ZeroFrame(*frame);
  }
  cache.pages_.emplace_back();
  auto it = std::prev(cache.pages_.end());
  PageDesc& page = *it;
  page.cache = &cache;
  page.offset = page_offset;
  page.frame = *frame;
  page.max_prot = max_prot;
  page.sw_dirty = dirty;
  page.self = it;
  map_.Insert(cache.id(), PageIndex(page_offset),
              MapEntry{.kind = MapEntry::Kind::kFrame, .page = &page, .cow = nullptr});
  AdoptInboundStubs(cache, page);
  if (dropped) {
    // The state the caller derived before calling us is stale.
    return Status::kRetry;
  }
  return &page;
}

Status PagedVm::MaterializeStubsOf(MutexLock& lock, PvmCache& cache,
                                   SegOffset page_offset) {
  const uint64_t index = PageIndex(page_offset);
  for (int rounds = 0; rounds < 4096; ++rounds) {
    // Threaded form: stubs hanging off an owned resident page.
    if (PageDesc* owned = FindOwned(cache, page_offset)) {
      if (owned->stubs.empty()) {
        return Status::kOk;
      }
      bool dropped = false;
      Status s = DetachStubs(lock, *owned, &dropped);
      if (s == Status::kRetry) {
        continue;
      }
      return s;
    }
    // Non-resident form: stubs registered in the inbound table.
    auto it = cache.inbound_stubs_.find(index);
    if (it == cache.inbound_stubs_.end() || it->second.empty()) {
      return Status::kOk;
    }
    // Resolve the current value.  If this materializes a page in `cache` itself
    // (zero fill at the walk's end), the inbound stubs get threaded onto it and
    // the threaded branch above finishes the job next round.
    bool dropped = false;
    Result<PageDesc*> value = ResolveValue(lock, cache, page_offset, &dropped);
    if (!value.ok()) {
      return value.status();
    }
    if (dropped) {
      continue;
    }
    it = cache.inbound_stubs_.find(index);
    if (it == cache.inbound_stubs_.end() || it->second.empty()) {
      continue;  // resolution already re-threaded them
    }
    // Give the stubs one shared private copy, owned by the first stub's cache
    // (mirrors DetachStubs for the non-resident form).
    CowStub* first = it->second.front();
    PvmCache& dst = *first->cache;
    const SegOffset dst_off = first->offset;
    PagePin value_pin(**value);
    Result<FrameIndex> frame = AllocateFrame(lock, &dropped);
    if (!frame.ok()) {
      return frame.status();
    }
    if (dropped) {
      memory().FreeFrame(*frame);
      continue;
    }
    std::memcpy(memory().FrameData(*frame), memory().FrameData((*value)->frame), page_size());
    MapEntry* entry = map_.Find(dst.id(), PageIndex(dst_off));
    assert(entry != nullptr && entry->kind == MapEntry::Kind::kCowStub &&
           entry->cow.get() == first);
    dst.pages_.emplace_back();
    auto page_it = std::prev(dst.pages_.end());
    PageDesc& fresh = *page_it;
    fresh.cache = &dst;
    fresh.offset = dst_off;
    fresh.frame = *frame;
    fresh.max_prot = Prot::kAll;
    fresh.sw_dirty = true;
    fresh.self = page_it;
    for (size_t i = 1; i < it->second.size(); ++i) {
      CowStub* stub = it->second[i];
      stub->src_page = &fresh;
      fresh.stubs.push_back(stub);
    }
    cache.inbound_stubs_.erase(it);
    entry->kind = MapEntry::Kind::kFrame;
    entry->page = &fresh;
    entry->cow.reset();
    AdoptInboundStubs(dst, fresh);
    ++detail_.stub_resolutions;
    ++mutable_stats().cow_copies;
    sleepers_.WakeAll(StubKey(dst, dst_off), mu_);
    return Status::kOk;
  }
  return Status::kBusError;
}

void PagedVm::ThreadStub(CowStub* stub) {
  if (stub->src_page != nullptr) {
    stub->src_page->stubs.push_back(stub);
  } else {
    stub->src_cache->inbound_stubs_[PageIndex(stub->src_offset)].push_back(stub);
  }
}

void PagedVm::UnlinkStub(CowStub* stub) {
  if (stub->src_page != nullptr) {
    auto& list = stub->src_page->stubs;
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == stub) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
    return;
  }
  auto it = stub->src_cache->inbound_stubs_.find(PageIndex(stub->src_offset));
  if (it == stub->src_cache->inbound_stubs_.end()) {
    return;
  }
  auto& list = it->second;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i] == stub) {
      list[i] = list.back();
      list.pop_back();
      break;
    }
  }
  if (list.empty()) {
    stub->src_cache->inbound_stubs_.erase(it);
  }
}

void PagedVm::AdoptInboundStubs(PvmCache& cache, PageDesc& page) {
  auto it = cache.inbound_stubs_.find(PageIndex(page.offset));
  if (it == cache.inbound_stubs_.end()) {
    return;
  }
  for (CowStub* stub : it->second) {
    stub->src_page = &page;
    page.stubs.push_back(stub);
  }
  cache.inbound_stubs_.erase(it);
}

void PagedVm::FreePage(PageDesc* page) {
  UnmapAllMappings(*page);
  // After the unmap hooks, which may have just enqueued the page: it is about
  // to die, so it must leave the pageout queues for good.
  QueueRemove(*page);
  // Per-page stubs that pointed at this page switch to the non-resident form:
  // "a pointer to the source local-cache descriptor and its offset" (section 4.3).
  // They are kept in the cache's inbound table so a re-pull re-threads them.
  if (!page->stubs.empty()) {
    auto& inbound = page->cache->inbound_stubs_[PageIndex(page->offset)];
    for (CowStub* stub : page->stubs) {
      stub->src_page = nullptr;
      stub->src_cache = page->cache;
      stub->src_offset = page->offset;
      inbound.push_back(stub);
    }
    page->stubs.clear();
  }
  PvmCache& cache = *page->cache;
  map_.Erase(cache.id(), PageIndex(page->offset));
  // Inside a gather scope the unmaps above have published but not yet fenced,
  // so a reader may still be using a cached translation to this frame: park it
  // on the gather and recycle it only after commit.  Outside a gather this is
  // an immediate free (the unmaps already fenced).
  tlb().FreeFrameAfterFlush(memory(), page->frame);
  cache.pages_.erase(page->self);  // destroys *page
}

// ---------------------------------------------------------------------------
// Transparent huge pages (DESIGN.md §16)
// ---------------------------------------------------------------------------

void PagedVm::DemoteIfHuge(AsId as, Vaddr va, DemoteReason reason) {
  if (huge_spans_.empty()) {
    return;
  }
  const size_t huge_bytes = mmu().huge_page_size();
  if (huge_bytes <= page_size()) {
    return;
  }
  const Vaddr hva = AlignDown(va, huge_bytes);
  auto it = huge_spans_.find({as, hva});
  if (it == huge_spans_.end()) {
    return;
  }
  huge_spans_.erase(it);
  // Break-before-make at the wide granule: the shootdown of the span's cached
  // translation is published (and, outside an enclosing gather, fenced) before
  // this function returns, so the caller's base-granular mutations can never
  // race a CPU still holding the wide entry.
  TlbGatherScope gather(&tlb());
  if (mmu().DemoteHuge(as, hva) != Status::kOk) {
    return;  // stale record: an inner auto-split already dismantled the span
  }
  ++detail_.demotions;
  if (reason == DemoteReason::kCow) {
    ++detail_.demote_cow;
  } else if (reason == DemoteReason::kPageout) {
    ++detail_.demote_pageout;
  }
}

void PagedVm::MaybePromote(const PageFault& fault, Vaddr page_va) {
  const size_t huge_bytes = mmu().huge_page_size();
  const size_t page_bytes = page_size();
  if (!options_.transparent_huge || huge_bytes <= page_bytes) {
    return;
  }
  const size_t ratio = huge_bytes / page_bytes;
  const Vaddr hva = AlignDown(page_va, huge_bytes);
  const AsId as = fault.address_space;
  if (huge_spans_.contains({as, hva})) {
    return;  // already wide
  }
  RegionImpl* r = RelookupRegion(fault);
  if (r == nullptr || hva < r->start() || hva + huge_bytes > r->end()) {
    return;  // the span must lie inside one region (one protection, one cache)
  }
  auto rm_it = region_maps_.find(r);
  if (rm_it == region_maps_.end()) {
    return;
  }
  auto& rmap = rm_it->second;
  // Validate every base page of the span; short-circuit on the first miss so
  // a sparse region costs O(1) per fault, not O(ratio).  Each page must be the
  // span's sole owner-view: resident, settled, unpinned, stub-free, mapped
  // exactly once (here), and carrying the same effective protection — a wide
  // PTE has one protection and one dirty bit for the whole span.
  std::vector<PageDesc*> span;
  span.reserve(ratio);
  Prot prot = Prot::kNone;
  for (size_t i = 0; i < ratio; ++i) {
    const Vaddr va = hva + i * page_bytes;
    auto it = rmap.find(va);
    if (it == rmap.end()) {
      return;
    }
    PageDesc* page = it->second;
    if (page->in_transit || page->pin_count > 0 || !page->stubs.empty() ||
        page->mappings.size() != 1) {
      return;
    }
    const MappingRef& ref = page->mappings[0];
    if (ref.as != as || ref.va != va || ref.region != r ||
        ref.via_cache != page->cache) {
      return;  // foreign (ancestor) view: the owner may still diverge under it
    }
    const Prot p = EffectiveProt(*r, *page, /*foreign=*/false);
    if (i == 0) {
      prot = p;
    } else if (p != prot) {
      return;
    }
    span.push_back(page);
  }
  if (prot == Prot::kNone) {
    return;
  }
  // Already physically contiguous?  Then the collapse is pure PTE surgery.
  bool contiguous = true;
  for (size_t i = 1; i < ratio; ++i) {
    if (span[i]->frame != span[0]->frame + i) {
      contiguous = false;
      break;
    }
  }
  FrameIndex run = span[0]->frame;
  if (!contiguous) {
    Result<FrameIndex> fresh = memory().AllocateRun(ratio);
    if (!fresh.ok()) {
      return;  // fragmentation: not an error, the span just stays base-grained
    }
    run = *fresh;
  }
  {
    // One batched removal of the N base PTEs (one ShootdownRange), harvesting
    // the hardware dirty bits atomically with the translations' death.
    TlbGatherScope gather(&tlb());
    uint64_t dirty_mask = 0;
    (void)mmu().UnmapRangeCollect(as, hva, ratio, &dirty_mask);
    for (size_t i = 0; i < ratio; ++i) {
      if ((dirty_mask >> i) & 1) {
        span[i]->sw_dirty = true;
      }
    }
    if (!contiguous) {
      // The removal above is published but its fence may still be pending
      // inside this gather: commit it before touching frame contents, or a
      // CPU still holding a stale writable translation could land a write in
      // an old frame AFTER its bytes were copied out — losing the write.
      (void)gather.Flush();  // commit-only: flushing an open gather cannot fail
      for (size_t i = 0; i < ratio; ++i) {
        const FrameIndex dst = static_cast<FrameIndex>(run + i);
        memory().CopyFrame(dst, span[i]->frame);
        memory().FreeFrame(span[i]->frame);
        span[i]->frame = dst;
      }
    }
    Status s = mmu().MapHuge(as, hva, run, prot);
    if (s != Status::kOk) {
      // Cannot happen for a validated span (alignment and the address space
      // both held under the never-dropped lock); restore base mappings so the
      // pages are not left translation-less with live MappingRefs.
      for (size_t i = 0; i < ratio; ++i) {
        (void)mmu().Map(as, hva + i * page_bytes, span[i]->frame, prot);
      }
      return;
    }
  }
  huge_spans_.insert({as, hva});
  ++detail_.promotions;
}

// ---------------------------------------------------------------------------
// MMU mapping bookkeeping
// ---------------------------------------------------------------------------

void PagedVm::MapPage(RegionImpl& region, Vaddr page_va, PageDesc& page, Prot prot,
                      PvmCache& via_cache) {
  // A base-granular (re)map inside a promoted span splits it first: once the
  // inner MMU auto-splits, no later base mutation could ever reach the wide
  // cached entry, so the demotion must kill it NOW (see DemoteIfHuge).
  DemoteIfHuge(region.context().address_space(), page_va, DemoteReason::kOther);
  auto& rmap = region_maps_[&region];
  auto it = rmap.find(page_va);
  if (it != rmap.end()) {
    PageDesc* old = it->second;
    if (old == &page) {
      // Same page, new protection.
      (void)mmu().Map(region.context().address_space(), page_va, page.frame, prot);
      return;
    }
    // Replace the previous mapping (e.g. an ancestor page superseded by a private
    // copy after a write fault).  The overwriting Map below installs a different
    // frame, which starts the PTE's dirty bit clear — harvest the old page's bit
    // atomically first or a modification recorded only in hardware dies with it.
    Result<MmuEntry> removed = mmu().UnmapCollect(region.context().address_space(), page_va);
    if (removed.ok() && removed->dirty) {
      old->sw_dirty = true;
    }
    for (size_t i = 0; i < old->mappings.size(); ++i) {
      if (old->mappings[i].region == &region && old->mappings[i].va == page_va) {
        old->mappings[i] = old->mappings.back();
        old->mappings.pop_back();
        break;
      }
    }
    rmap.erase(it);
    WsNoteUnmapped(region.context().address_space(), *old);
    if (old->mappings.empty()) {
      ReconsiderQueue(*old);
    }
  }
  AsId as = region.context().address_space();
  (void)mmu().Map(as, page_va, page.frame, prot);
  page.mappings.push_back(
      MappingRef{.as = as, .va = page_va, .region = &region, .via_cache = &via_cache});
  rmap[page_va] = &page;
  // Pressure bookkeeping.  Mapping a queued page is a *soft fault*: the page
  // was rescued from the pageout queues with no mapper I/O.  The re-fault rate
  // feeds the address space's thrashing EWMA (fixed-point, x1000).
  WorkingSet& ws = working_sets_[as];
  const bool refault = page.queue != PageQueue::kNone;
  if (refault) {
    ++detail_.soft_faults;
    if (page.queue == PageQueue::kStandby) {
      ++detail_.standby_hits;
    }
    QueueRemove(page);
  }
  ws.refault_ewma_x1000 = ws.refault_ewma_x1000 * 7 / 8 + (refault ? 1000 / 8 : 0);
  WsNoteMapped(as, page);
  if (options_.working_set_limit_pages > 0) {
    // Fault-time working-set trim: evict (unmap only — no I/O here) this
    // space's coldest pages until it is back under its limit.  Never trim the
    // page just mapped, even when the limit is absurdly small.
    while (ws.fifo.size() > options_.working_set_limit_pages &&
           ws.fifo.front() != &page) {
      ++detail_.ws_trims;
      TrimPageFromAs(*ws.fifo.front(), as);
    }
  }
}

void PagedVm::UnmapMapping(PageDesc& page, size_t index, DemoteReason reason) {
  const MappingRef ref = page.mappings[index];
  // Huge-aware: removing one base page from a promoted span splits the span
  // first, so the UnmapCollect below sees a base PTE whose dirty bit already
  // carries the fanned-out span bit.
  DemoteIfHuge(ref.as, ref.va, reason);
  // Harvest the hardware dirty bit as the translation dies: a read fault on a
  // writable region maps with write permission, so the CPU can dirty the page
  // without a fault ever setting sw_dirty — after the unmap, that bit is the
  // only record of the modification.  The remove-and-read must be the MMU's
  // atomic UnmapCollect: with a separate Lookup a write can slip between the
  // probe and the unmap, and its dirty bit dies with the PTE.
  Result<MmuEntry> removed = mmu().UnmapCollect(ref.as, ref.va);
  if (removed.ok() && removed->dirty) {
    page.sw_dirty = true;
  }
  auto rm_it = region_maps_.find(ref.region);
  if (rm_it != region_maps_.end()) {
    rm_it->second.erase(ref.va);
    if (rm_it->second.empty()) {
      region_maps_.erase(rm_it);
    }
  }
  page.mappings[index] = page.mappings.back();
  page.mappings.pop_back();
  WsNoteUnmapped(ref.as, page);
  if (page.mappings.empty()) {
    ReconsiderQueue(page);
  }
}

void PagedVm::UnmapAllMappings(PageDesc& page, DemoteReason reason) {
  while (!page.mappings.empty()) {
    UnmapMapping(page, page.mappings.size() - 1, reason);
  }
}

void PagedVm::RemoveForeignMappings(PageDesc& page) {
  for (size_t i = page.mappings.size(); i > 0; --i) {
    if (page.mappings[i - 1].via_cache != page.cache) {
      UnmapMapping(page, i - 1);
    }
  }
}

void PagedVm::WriteProtectPage(PageDesc& page) {
  for (const MappingRef& ref : page.mappings) {
    // Split-on-COW: the copy machinery is about to share this page, and a wide
    // translation has ONE protection for its whole span — demote so only this
    // base page loses write access, and a later write fault copies exactly one
    // base page through the history object.
    DemoteIfHuge(ref.as, ref.va, DemoteReason::kCow);
    Prot prot = EffectiveProt(*ref.region, page, /*foreign=*/ref.via_cache != page.cache);
    (void)mmu().Protect(ref.as, ref.va, prot & ~Prot::kWrite);
  }
}

bool PagedVm::IsCowProtected(const PageDesc& page) const {
  const PvmCache& owner = *page.cache;
  // A pending history push?  (Sections 4.2.2/4.2.3: sources of a deferred copy stay
  // read-only until the original value is secured in the history object.)  The
  // original counts as secured if the history holds it resident, as a stub, or
  // pushed out on its own segment — this must mirror PushToHistory exactly, or a
  // source page would stay read-only forever and write faults would spin.
  if (const auto* frag = owner.histories_.Find(page.offset)) {
    PvmCache& history = *frag->value.cache;
    SegOffset h_off = frag->value.base + (page.offset - frag->start);
    auto* entry = const_cast<PagedVm*>(this)->map_.Find(history.id(), PageIndex(h_off));
    bool secured = entry != nullptr || history.pushed_pages_.contains(PageIndex(h_off));
    if (!secured) {
      return true;
    }
    if (entry != nullptr && entry->kind == MapEntry::Kind::kSyncStub) {
      return true;  // in transit: keep the source read-only until it settles
    }
  }
  // Per-virtual-page stubs still share this frame (section 4.3)?
  if (!page.stubs.empty()) {
    return true;
  }
  // Foreign read mappings (descendants reading through the tree) share the frame?
  for (const MappingRef& ref : page.mappings) {
    if (ref.via_cache != page.cache) {
      return true;
    }
  }
  return false;
}

Prot PagedVm::EffectiveProt(const RegionImpl& region, const PageDesc& page, bool foreign) const {
  Prot prot = region.prot() & page.max_prot;
  if (foreign || IsCowProtected(page)) {
    prot = prot & ~Prot::kWrite;
  }
  return prot;
}

// ---------------------------------------------------------------------------
// Miss resolution: the upward walk of section 4.2.1
// ---------------------------------------------------------------------------

PagedVm::Lookup PagedVm::LookupValue(PvmCache& cache, SegOffset page_offset) {
  PvmCache* cur = &cache;
  SegOffset off = page_offset;
  bool cor = false;
  // The history tree is acyclic by construction; the bound catches corruption.
  for (int depth = 0; depth < 1024; ++depth) {
    MapEntry* entry = map_.Find(cur->id(), PageIndex(off));
    if (entry != nullptr) {
      switch (entry->kind) {
        case MapEntry::Kind::kFrame:
          if (entry->page->in_transit) {
            return Lookup{.kind = Lookup::Kind::kBlocked, .source = cur, .source_offset = off};
          }
          ++detail_.ancestor_lookups;
          return Lookup{.kind = Lookup::Kind::kPage, .page = entry->page,
                        .copy_on_reference = cor};
        case MapEntry::Kind::kSyncStub:
          return Lookup{.kind = Lookup::Kind::kBlocked, .source = cur, .source_offset = off};
        case MapEntry::Kind::kCowStub: {
          CowStub* stub = entry->cow.get();
          if (stub->src_page != nullptr) {
            if (stub->src_page->in_transit) {
              return Lookup{.kind = Lookup::Kind::kBlocked,
                            .source = stub->src_page->cache,
                            .source_offset = stub->src_page->offset};
            }
            ++detail_.ancestor_lookups;
            return Lookup{.kind = Lookup::Kind::kPage, .page = stub->src_page,
                          .copy_on_reference = cor};
          }
          cur = stub->src_cache;
          off = stub->src_offset;
          continue;
        }
      }
    }
    // The authoritative copy is on this cache's own segment if it was ever pushed.
    if (cur->pushed_pages_.contains(PageIndex(off))) {
      return Lookup{.kind = Lookup::Kind::kPullIn, .source = cur, .source_offset = off};
    }
    if (const auto* frag = cur->parents_.Find(off)) {
      cor = cor || frag->value.copy_on_reference;
      off = frag->value.base + (off - frag->start);
      cur = frag->value.cache;
      continue;
    }
    if (!cur->temporary_) {
      // Permanent segment: the mapper holds the data (e.g. a file's pages).
      return Lookup{.kind = Lookup::Kind::kPullIn, .source = cur, .source_offset = off};
    }
    return Lookup{.kind = Lookup::Kind::kZeroFill, .source = cur, .source_offset = off};
  }
  // Mutual whole-range copies between two never-written segments walk in a circle;
  // no cache owns a version anywhere on it, so the logical value is zero.  Fill at
  // the starting cache so the walk terminates next time.
  GVM_LOG(Debug) << "history-tree walk hit the depth bound; treating as demand-zero";
  return Lookup{.kind = Lookup::Kind::kZeroFill, .source = &cache,
                .source_offset = page_offset};
}

Result<PageDesc*> PagedVm::ResolveValue(MutexLock& lock, PvmCache& cache,
                                        SegOffset page_offset, bool* dropped_lock) {
  for (int rounds = 0; rounds < 4096; ++rounds) {
    Lookup found = LookupValue(cache, page_offset);
    switch (found.kind) {
      case Lookup::Kind::kPage:
        return found.page;
      case Lookup::Kind::kZeroFill: {
        // No value anywhere: demand-zero in the cache where the walk ended (a
        // temporary cache with no parent), so future lookups find it.
        Result<PageDesc*> page = MaterializePage(lock, *found.source, found.source_offset,
                                                 nullptr, /*dirty=*/false, Prot::kAll);
        if (page.ok()) {
          mutable_stats().zero_fills += 1;
          return page;
        }
        if (page.status() == Status::kRetry) {
          *dropped_lock = true;
          continue;
        }
        return page.status();
      }
      case Lookup::Kind::kPullIn: {
        Status s = PullInLocked(lock, *found.source, found.source_offset, Access::kRead);
        *dropped_lock = true;
        if (s != Status::kOk) {
          return s;
        }
        continue;
      }
      case Lookup::Kind::kBlocked:
        ++detail_.sync_stub_waits;
        sleepers_.Wait(StubKey(*found.source, found.source_offset), mu_);
        *dropped_lock = true;
        continue;
    }
  }
  GVM_LOG(Error) << "ResolveValue did not converge";
  return Status::kBusError;
}

// ---------------------------------------------------------------------------
// History pushes (sections 4.2.2, 4.2.3)
// ---------------------------------------------------------------------------

Status PagedVm::PushToHistory(MutexLock& lock, PvmCache& cache,
                              PageDesc& page, bool* dropped_lock) {
  const auto* frag = cache.histories_.Find(page.offset);
  if (frag == nullptr) {
    return Status::kOk;
  }
  PvmCache& history = *frag->value.cache;
  SegOffset h_off = frag->value.base + (page.offset - frag->start);
  for (int rounds = 0; rounds < 64; ++rounds) {
    MapEntry* entry = map_.Find(history.id(), PageIndex(h_off));
    if (entry != nullptr) {
      if (entry->kind == MapEntry::Kind::kFrame && !entry->page->in_transit) {
        // "If the history object already has its own version of the page, it
        // suffices to make the page writable."
        return Status::kOk;
      }
      if (entry->kind == MapEntry::Kind::kCowStub) {
        // The history's value for this page is already defined elsewhere.
        return Status::kOk;
      }
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(history, h_off), mu_);
      *dropped_lock = true;
      return Status::kRetry;  // page pointer may be stale now
    }
    // If the history's value was pushed out to its segment, it is still secured.
    if (history.pushed_pages_.contains(PageIndex(h_off))) {
      return Status::kOk;
    }
    PagePin src_pin(page);
    Result<PageDesc*> copy =
        MaterializePage(lock, history, h_off, memory().FrameData(page.frame),
                        /*dirty=*/true, Prot::kAll);
    if (copy.ok()) {
      ++detail_.history_pushes;
      ++mutable_stats().cow_copies;
      return Status::kOk;
    }
    if (copy.status() == Status::kRetry) {
      *dropped_lock = true;
      return Status::kRetry;  // `page` may have been evicted meanwhile
    }
    return copy.status();
  }
  return Status::kBusError;
}

Status PagedVm::DetachStubs(MutexLock& lock, PageDesc& page,
                            bool* dropped_lock) {
  if (page.stubs.empty()) {
    return Status::kOk;
  }
  // Give the stubs one shared private copy of the original value: the first stub's
  // cache receives an owned page; the remaining stubs are re-threaded onto it.
  CowStub* first = page.stubs.front();
  PvmCache& dst = *first->cache;
  const SegOffset dst_off = first->offset;

  // Allocate the frame first; the stub entry keeps the slot stable even if the
  // allocation has to evict (which drops the lock).  Pin the source page: the
  // eviction may otherwise pick it as a clean victim and free it in place.
  PagePin src_pin(page);
  bool dropped = false;
  Result<FrameIndex> frame = AllocateFrame(lock, &dropped);
  if (!frame.ok()) {
    return frame.status();
  }
  if (dropped) {
    *dropped_lock = true;
    // `page` may be stale; the caller re-derives and retries (the frame is
    // returned to keep the allocator balanced).
    memory().FreeFrame(*frame);
    return Status::kRetry;
  }
  std::memcpy(memory().FrameData(*frame), memory().FrameData(page.frame), page_size());

  // Swap the first stub for an owned page under the continuously-held lock.
  MapEntry* entry = map_.Find(dst.id(), PageIndex(dst_off));
  assert(entry != nullptr && entry->kind == MapEntry::Kind::kCowStub &&
         entry->cow.get() == first);
  dst.pages_.emplace_back();
  auto it = std::prev(dst.pages_.end());
  PageDesc& fresh = *it;
  fresh.cache = &dst;
  fresh.offset = dst_off;
  fresh.frame = *frame;
  fresh.max_prot = Prot::kAll;
  fresh.sw_dirty = true;
  fresh.self = it;
  // Re-thread the remaining stubs onto the fresh page.
  for (size_t i = 1; i < page.stubs.size(); ++i) {
    CowStub* stub = page.stubs[i];
    stub->src_page = &fresh;
    fresh.stubs.push_back(stub);
  }
  page.stubs.clear();
  entry->kind = MapEntry::Kind::kFrame;
  entry->page = &fresh;
  entry->cow.reset();
  AdoptInboundStubs(dst, fresh);
  ++detail_.stub_resolutions;
  ++mutable_stats().cow_copies;
  sleepers_.WakeAll(StubKey(dst, dst_off), mu_);
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// The write-violation algorithm (sections 4.2.2, 4.2.3, 4.3)
// ---------------------------------------------------------------------------

Result<PageDesc*> PagedVm::EnsureWritablePage(MutexLock& lock,
                                              PvmCache& cache, SegOffset page_offset,
                                              bool* dropped_lock) {
  for (int rounds = 0; rounds < 4096; ++rounds) {
    MapEntry* entry = FindEntry(cache, page_offset);
    if (entry != nullptr && entry->kind == MapEntry::Kind::kSyncStub) {
      ++detail_.sync_stub_waits;
      sleepers_.Wait(StubKey(cache, page_offset), mu_);
      *dropped_lock = true;
      continue;
    }
    if (entry != nullptr && entry->kind == MapEntry::Kind::kFrame) {
      PageDesc* page = entry->page;
      if (page->in_transit) {
        ++detail_.sync_stub_waits;
        sleepers_.Wait(StubKey(cache, page_offset), mu_);
        *dropped_lock = true;
        continue;
      }
      // The cache owns the page.  First, honour the cache-level protection cap:
      // write access beyond it requires the getWriteAccess upcall.
      if (!ProtAllows(page->max_prot, Prot::kWrite)) {
        SegmentDriver* driver = cache.driver_;
        if (driver == nullptr) {
          return Status::kProtectionFault;
        }
        const uint64_t epoch = cache.revoke_epoch_;
        lock.unlock();
        Status granted = driver->GetWriteAccess(cache, page_offset, page_size());
        lock.lock();
        *dropped_lock = true;
        if (granted != Status::kOk) {
          return Status::kProtectionFault;
        }
        // A recall or invalidate that ran while the lock was dropped revoked
        // the grant we just obtained: applying it anyway would let this cache
        // write a page the driver has already handed to someone else.  Loop
        // instead; the retry re-faults through a fresh upcall.
        if (cache.revoke_epoch_ != epoch) {
          continue;
        }
        PageDesc* again = FindOwned(cache, page_offset);
        if (again != nullptr) {
          again->max_prot = again->max_prot | Prot::kWrite;
        }
        continue;
      }
      // Secure the original value in the history object, if one is owed it.
      Status pushed = PushToHistory(lock, cache, *page, dropped_lock);
      if (pushed == Status::kRetry) {
        continue;
      }
      if (pushed != Status::kOk) {
        return pushed;
      }
      // Resolve per-virtual-page stubs sharing this frame.
      Status detached = DetachStubs(lock, *page, dropped_lock);
      if (detached == Status::kRetry) {
        continue;
      }
      if (detached != Status::kOk) {
        return detached;
      }
      // Finally, revoke foreign read mappings: descendants must re-fault and find
      // the original in the history object, not watch our new value.
      RemoveForeignMappings(*page);
      page->sw_dirty = true;
      return page;
    }
    if (entry != nullptr && entry->kind == MapEntry::Kind::kCowStub) {
      // Write violation on a copy-on-write page stub (section 4.3): "a new page
      // frame is allocated with a copy of the source page, and inserted in the
      // global map in replacement of the stub."
      CowStub* stub = entry->cow.get();
      PageDesc* src;
      if (stub->src_page != nullptr) {
        if (stub->src_page->in_transit) {
          ++detail_.sync_stub_waits;
          sleepers_.Wait(StubKey(*stub->src_page->cache, stub->src_page->offset), mu_);
          *dropped_lock = true;
          continue;
        }
        src = stub->src_page;
      } else {
        bool dropped = false;
        Result<PageDesc*> resolved = ResolveValue(lock, *stub->src_cache, stub->src_offset,
                                                  &dropped);
        if (dropped) {
          *dropped_lock = true;
        }
        if (!resolved.ok()) {
          return resolved.status();
        }
        if (dropped) {
          continue;  // the stub may have changed form; re-derive
        }
        src = *resolved;
      }
      // Secure the history's claim on this page's *pre-copy* value.  (A per-page
      // copy into a history-covered range had its history satisfied when the
      // destination range was cleared; reaching here with a live history link
      // means the link was established over the stub, whose value is src's.)
      bool dropped = false;
      PagePin src_pin(*src);
      Result<FrameIndex> frame = AllocateFrame(lock, &dropped);
      if (!frame.ok()) {
        return frame.status();
      }
      if (dropped) {
        *dropped_lock = true;
        memory().FreeFrame(*frame);
        continue;
      }
      std::memcpy(memory().FrameData(*frame), memory().FrameData(src->frame), page_size());
      UnlinkStub(stub);
      cache.pages_.emplace_back();
      auto it = std::prev(cache.pages_.end());
      PageDesc& fresh = *it;
      fresh.cache = &cache;
      fresh.offset = page_offset;
      fresh.frame = *frame;
      fresh.max_prot = Prot::kAll;
      fresh.sw_dirty = true;
      fresh.self = it;
      entry->kind = MapEntry::Kind::kFrame;
      entry->page = &fresh;
      entry->cow.reset();
      AdoptInboundStubs(cache, fresh);
      ++detail_.stub_resolutions;
      ++mutable_stats().cow_copies;
      sleepers_.WakeAll(StubKey(cache, page_offset), mu_);
      continue;  // loop once more; the owned-page branch finishes the job
    }
    // No entry: the cache does not own the page.  Find the current value, give the
    // history object its copy (the section 4.2.3 complication), then materialize a
    // private writable copy.
    bool dropped = false;
    Result<PageDesc*> value = ResolveValue(lock, cache, page_offset, &dropped);
    if (dropped) {
      *dropped_lock = true;
    }
    if (!value.ok()) {
      return value.status();
    }
    if (dropped) {
      continue;
    }
    PageDesc* src = *value;
    if (src->cache == &cache && src->offset == page_offset) {
      continue;  // the walk ended at home (e.g. a zero fill landed here)
    }
    PagePin src_pin(*src);  // materialization below may evict; keep the source alive
    // Note: the owner may be this very cache at a *different* offset (mutual
    // copies between two segments produce such walks); that is an ordinary
    // ancestor value and is materialized like any other.
    // 4.2.3: "When a write violation occurs in cpy1, a copy of the page is taken
    // from src, but copyOfCpy1 must also get its own copy" — the history object of
    // a middle node receives the inherited value before the node diverges.
    if (const auto* frag = cache.histories_.Find(page_offset)) {
      PvmCache& history = *frag->value.cache;
      SegOffset h_off = frag->value.base + (page_offset - frag->start);
      MapEntry* h_entry = map_.Find(history.id(), PageIndex(h_off));
      if (h_entry == nullptr && !history.pushed_pages_.contains(PageIndex(h_off))) {
        Result<PageDesc*> h_copy = MaterializePage(lock, history, h_off,
                                                   memory().FrameData(src->frame),
                                                   /*dirty=*/true, Prot::kAll);
        if (!h_copy.ok()) {
          if (h_copy.status() == Status::kRetry) {
            *dropped_lock = true;
            continue;
          }
          return h_copy.status();
        }
        ++detail_.history_pushes;
      ++mutable_stats().cow_copies;
      }
    }
    Result<PageDesc*> fresh = MaterializePage(lock, cache, page_offset,
                                              memory().FrameData(src->frame),
                                              /*dirty=*/true, Prot::kAll);
    if (!fresh.ok()) {
      if (fresh.status() == Status::kRetry) {
        *dropped_lock = true;
        continue;
      }
      return fresh.status();
    }
    ++mutable_stats().cow_copies;
    // One more pass through the owned-page branch settles stubs/foreign mappings.
    continue;
  }
  GVM_LOG(Error) << "EnsureWritablePage did not converge";
  return Status::kBusError;
}

// ---------------------------------------------------------------------------
// Fault handling (section 4.1.2)
// ---------------------------------------------------------------------------

Status PagedVm::ResolveFault(RegionImpl& region, const PageFault& fault, SegOffset page_offset,
                             MutexLock& lock) {
  RegionImpl* r = &region;
  SegOffset offset = page_offset;
  const Vaddr page_va = AlignDown(fault.address, page_size());
  Status result = Status::kOk;

  // Thrash throttle (DESIGN.md §15): while the pool sits below low water, an
  // address space whose re-fault EWMA marks it a thrasher waits out one
  // reclaim pass instead of stealing the frames its own evictions are about
  // to re-fault on.  Only engages with the daemon running (so a waker is
  // guaranteed) and never throttles the reclaimer itself; the decay below
  // bounds consecutive throttles of one space, guaranteeing progress.
  if (options_.thrash_ewma_threshold > 0 &&
      daemon_active_.load(std::memory_order_acquire) &&
      options_.low_water_frames > 0 &&
      memory().free_frames() < options_.low_water_frames &&
      active_reclaimer_ != std::this_thread::get_id()) {
    auto ws_it = working_sets_.find(region.context().address_space());
    if (ws_it != working_sets_.end() &&
        ws_it->second.refault_ewma_x1000 > options_.thrash_ewma_threshold) {
      ++detail_.thrash_throttles;
      ws_it->second.refault_ewma_x1000 = ws_it->second.refault_ewma_x1000 * 7 / 8;
      KickPageoutDaemon();
      sleepers_.Wait(kFrameWaitKey, mu_);  // drops and reacquires mu_
      return Status::kOk;  // the CPU re-faults; the region may be gone by now
    }
  }

  for (int rounds = 0; rounds < 256; ++rounds) {
    PvmCache& cache = static_cast<PvmCache&>(r->cache());
    bool dropped = false;

    if (fault.access == Access::kWrite) {
      if (cache.degraded_) {
        // Degraded segment: dirty data cannot currently reach the mapper, so
        // refuse new writes rather than accept bytes that may be lost.  Reads
        // (the else branch) are still served.
        result = Status::kBusError;
        break;
      }
      Result<PageDesc*> page = EnsureWritablePage(lock, cache, offset, &dropped);
      if (!page.ok()) {
        result = page.status();
        break;
      }
      if (!dropped) {
        MapPage(*r, page_va, **page, EffectiveProt(*r, **page, /*foreign=*/false), cache);
        result = Status::kOk;
        break;
      }
    } else {
      // Read or execute access.
      MapEntry* entry = FindEntry(cache, offset);
      if (entry != nullptr && entry->kind == MapEntry::Kind::kFrame &&
          !entry->page->in_transit) {
        PageDesc* page = entry->page;
        Prot prot = EffectiveProt(*r, *page, /*foreign=*/false);
        if (!ProtAllows(prot, AccessProt(fault.access))) {
          // The cache-level cap forbids even this read (a coherence server revoked
          // it).  Re-pull fresh data from the segment.
          if (cache.driver_ == nullptr) {
            result = Status::kProtectionFault;
            break;
          }
          FreePage(page);
          Status s = PullInLocked(lock, cache, offset, fault.access);
          if (s != Status::kOk) {
            result = s;
            break;
          }
          dropped = true;
        } else {
          MapPage(*r, page_va, *page, prot, cache);
          result = Status::kOk;
          break;
        }
      } else {
        bool inner_dropped = false;
        Result<PageDesc*> value = ResolveValue(lock, cache, offset, &inner_dropped);
        if (!value.ok()) {
          result = value.status();
          break;
        }
        if (!inner_dropped) {
          PageDesc* page = *value;
          Lookup look = LookupValue(cache, offset);
          bool via_copy_on_ref = look.copy_on_reference;
          if (via_copy_on_ref && page->cache != &cache) {
            // Copy-on-reference: materialize the private copy now instead of
            // mapping the ancestor page (section 4.2, "copy-on-reference scheme").
            Result<PageDesc*> fresh = EnsureWritablePage(lock, cache, offset, &dropped);
            if (!fresh.ok()) {
              result = fresh.status();
              break;
            }
            if (!dropped) {
              MapPage(*r, page_va, **fresh, EffectiveProt(*r, **fresh, false), cache);
              result = Status::kOk;
              break;
            }
          } else {
            bool foreign = page->cache != &cache;
            MapPage(*r, page_va, *page, EffectiveProt(*r, *page, foreign), cache);
            result = Status::kOk;
            break;
          }
        } else {
          dropped = true;
        }
      }
    }

    if (dropped) {
      // The lock was dropped somewhere: the region may be gone or replaced.
      r = RelookupRegion(fault);
      if (r == nullptr || !ProtAllows(r->prot(), AccessProt(fault.access))) {
        // Let the CPU re-fault and surface the right exception cleanly.
        result = Status::kOk;
        break;
      }
      offset = r->OffsetOf(page_va);
    }
  }

  if (result == Status::kOk && options_.pullin_cluster_pages > 1) {
    ClusterPullIns(lock, fault, page_va);
  }
  if (result == Status::kOk && HugeEnabled()) {
    // This fault may have completed a huge-aligned span: collapse it.  After
    // ClusterPullIns, so a prefetched tail can finish the span the same fault.
    MaybePromote(fault, page_va);
  }

  // kRetry is a private protocol between internal loops; by the time a fault
  // resolution returns it must have been converted into kOk or a real error.
  assert(result != Status::kRetry && "kRetry escaped ResolveFault");
  return result;  // `lock` is owned by BaseMm::HandleFault
}

// Fault-around: a fault that just resolved at `primary_va` is a strong hint of a
// sequential stream, and each neighbouring page whose value already sits in the
// mapper can be materialized now for the price of an upcall — saving a full
// fault round-trip later.  Strictly best-effort: any surprise (region replaced,
// value moved, stub appeared, free frames low) just stops the cluster.
void PagedVm::ClusterPullIns(MutexLock& lock, const PageFault& fault,
                             Vaddr primary_va) {
  const size_t page = page_size();
  for (size_t i = 1; i < options_.pullin_cluster_pages; ++i) {
    // Speculative work must never create memory pressure of its own.
    if (memory().free_frames() <= options_.high_water_frames) {
      return;
    }
    RegionImpl* r = RelookupRegion(fault);
    if (r == nullptr) {
      return;
    }
    const Vaddr va = primary_va + i * page;
    if (!r->Contains(va) || !ProtAllows(r->prot(), Prot::kRead)) {
      return;
    }
    PvmCache& cache = static_cast<PvmCache&>(r->cache());
    SegOffset offset = r->OffsetOf(va);
    Lookup look = LookupValue(cache, offset);
    if (look.kind != Lookup::Kind::kPullIn) {
      return;  // resident, zero-fill, or blocked: nothing to prefetch here
    }
    if (PullInLocked(lock, *look.source, look.source_offset, Access::kRead) != Status::kOk) {
      return;
    }
    // The upcall dropped the lock: re-derive everything before mapping.
    r = RelookupRegion(fault);
    if (r == nullptr || !r->Contains(va)) {
      return;
    }
    PvmCache& now_cache = static_cast<PvmCache&>(r->cache());
    look = LookupValue(now_cache, r->OffsetOf(va));
    if (look.kind != Lookup::Kind::kPage || look.page->in_transit) {
      continue;  // value moved while unlocked; the pull-in itself still helps
    }
    if (look.copy_on_reference && look.page->cache != &now_cache) {
      continue;  // mapping would bypass copy-on-reference materialization
    }
    const bool foreign = look.page->cache != &now_cache;
    MapPage(*r, va, *look.page, EffectiveProt(*r, *look.page, foreign), now_cache);
    ++detail_.pullin_clustered;
  }
}

// ---------------------------------------------------------------------------
// Region hooks
// ---------------------------------------------------------------------------

void PagedVm::OnRegionMapped(RegionImpl& region, MutexLock& lock) {
  (void)lock;
  static_cast<PvmCache&>(region.cache()).mapping_count_++;
}

void PagedVm::OnRegionUnmapping(RegionImpl& region) {
  auto it = region_maps_.find(&region);
  if (it != region_maps_.end()) {
    // Detach every mapped page (O(resident pages of the region), per section
    // 4.1).  The MMU side is one batched UnmapRangeCollect per *contiguous
    // resident run* (capped at the 64-page dirty-mask width), found by walking
    // the sorted rmap — never the whole VA span, which for a sparse region
    // could be astronomically larger than its resident set.  The unmap runs
    // BEFORE the bookkeeping for its pages: the collected mask is the atomic
    // dirty harvest (see UnmapMapping), and ReconsiderQueue must classify
    // modified-vs-standby only after that harvest has landed in sw_dirty.
    // Under the caller's gather (region/context teardown) all runs share one
    // fence regardless.
    const size_t page_bytes = page_size();
    const AsId as = region.context().address_space();
    std::vector<PageDesc*> run;
    Vaddr run_start = 0;
    auto flush_run = [&] {
      if (run.empty()) {
        return;
      }
      // Promoted spans intersecting the run are split first (cheap set lookups
      // when no spans exist), so the batched removal below unmaps base PTEs
      // whose dirty bits already carry the fanned-out span bit.
      for (size_t i = 0; i < run.size(); ++i) {
        DemoteIfHuge(as, run_start + i * page_bytes, DemoteReason::kOther);
      }
      uint64_t dirty_mask = 0;
      (void)mmu().UnmapRangeCollect(as, run_start, run.size(), &dirty_mask);
      for (size_t i = 0; i < run.size(); ++i) {
        PageDesc* page = run[i];
        if ((dirty_mask >> i) & 1) {
          page->sw_dirty = true;
        }
        const Vaddr va = run_start + i * page_bytes;
        for (size_t m = 0; m < page->mappings.size(); ++m) {
          if (page->mappings[m].region == &region && page->mappings[m].va == va) {
            page->mappings[m] = page->mappings.back();
            page->mappings.pop_back();
            break;
          }
        }
        WsNoteUnmapped(as, *page);
        if (page->mappings.empty()) {
          ReconsiderQueue(*page);
        }
      }
      run.clear();
    };
    for (auto& [va, page] : it->second) {
      if (!run.empty() &&
          (va != run_start + run.size() * page_bytes || run.size() == 64)) {
        flush_run();
      }
      if (run.empty()) {
        run_start = va;
      }
      run.push_back(page);
    }
    flush_run();
    region_maps_.erase(it);
  }
  static_cast<PvmCache&>(region.cache()).mapping_count_--;
}

void PagedVm::OnRegionSplit(RegionImpl& first, RegionImpl& second) {
  static_cast<PvmCache&>(second.cache()).mapping_count_++;
  auto it = region_maps_.find(&first);
  if (it == region_maps_.end()) {
    return;
  }
  auto& first_map = it->second;
  auto lo = first_map.lower_bound(second.start());
  if (lo == first_map.end()) {
    return;
  }
  auto& second_map = region_maps_[&second];
  for (auto move_it = lo; move_it != first_map.end(); ++move_it) {
    second_map.emplace(move_it->first, move_it->second);
    for (MappingRef& ref : move_it->second->mappings) {
      if (ref.region == &first && ref.va == move_it->first) {
        ref.region = &second;
      }
    }
  }
  first_map.erase(lo, first_map.end());
  if (first_map.empty()) {
    region_maps_.erase(&first);
  }
}

void PagedVm::OnRegionProtection(RegionImpl& region) {
  auto it = region_maps_.find(&region);
  if (it == region_maps_.end()) {
    return;
  }
  // Protections vary per page (EffectiveProt depends on page state) so the
  // mutations stay page-granular, but the fence need not: one gather commit
  // retires every downgrade in the region.  No lock is dropped in the scope.
  TlbGatherScope gather(&tlb());
  for (auto& [va, page] : it->second) {
    for (const MappingRef& ref : page->mappings) {
      if (ref.region == &region && ref.va == va) {
        // A protection split inside a promoted span demotes it: the wide
        // translation has one protection for the whole span.
        DemoteIfHuge(ref.as, va, DemoteReason::kOther);
        bool foreign = ref.via_cache != page->cache;
        (void)mmu().Protect(ref.as, va, EffectiveProt(region, *page, foreign));
        break;
      }
    }
  }
}

Status PagedVm::OnRegionLock(RegionImpl& region, MutexLock& lock) {
  // Fault in and pin every page of the region.  Pinning is necessarily O(region
  // size): every page must be resident for fault-free access.
  const size_t page = page_size();
  const bool writable = ProtAllows(region.prot(), Prot::kWrite);
  const AsId as = region.context().address_space();
  const Vaddr start = region.start();
  const Vaddr end = region.end();
  for (Vaddr va = start; va < end; va += page) {
    for (int rounds = 0;; ++rounds) {
      if (rounds > 256) {
        return Status::kBusError;
      }
      // Drive through the regular fault path.
      PageFault fault{.address_space = as, .address = va,
                      .access = writable ? Access::kWrite : Access::kRead,
                      .protection_violation = false};
      RegionImpl* r = RelookupRegion(fault);
      if (r == nullptr) {
        return Status::kNotFound;
      }
      Status s = ResolveFault(*r, fault, r->OffsetOf(AlignDown(va, page)), lock);
      if (s != Status::kOk) {
        return s;
      }
      // Pin the page now mapped at `va` (if the map settled).
      auto rm = region_maps_.find(r);
      if (rm != region_maps_.end()) {
        auto entry = rm->second.find(va);
        if (entry != rm->second.end() && !entry->second->in_transit) {
          entry->second->pin_count++;
          break;
        }
      }
    }
  }
  return Status::kOk;
}

Status PagedVm::OnRegionUnlock(RegionImpl& region) {
  auto it = region_maps_.find(&region);
  if (it == region_maps_.end()) {
    return Status::kOk;
  }
  for (auto& [va, page] : it->second) {
    if (page->pin_count > 0) {
      page->pin_count--;
    }
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t PagedVm::CacheCount() const {
  MutexLock lock(mu_);
  return caches_.size();
}

size_t PagedVm::GlobalMapEntries() const {
  MutexLock lock(mu_);
  return map_.size();
}

size_t PagedVm::SyncStubCount() const {
  MutexLock lock(mu_);
  return map_.CountKind(MapEntry::Kind::kSyncStub);
}

size_t PagedVm::CowStubCount() const {
  MutexLock lock(mu_);
  return map_.CountKind(MapEntry::Kind::kCowStub);
}

size_t PagedVm::InTransitCount() const {
  MutexLock lock(mu_);
  size_t count = 0;
  for (const auto& [id, cache] : caches_) {
    for (const PageDesc& page : cache->pages_) {
      if (page.in_transit) {
        ++count;
      }
    }
  }
  return count;
}

void PagedVm::PokeSleepers(const Cache& cache, SegOffset offset) {
  MutexLock lock(mu_);
  sleepers_.WakeAll(StubKey(static_cast<const PvmCache&>(cache), offset), mu_);
}

}  // namespace gvm
