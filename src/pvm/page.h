// PVM page-level data structures (paper section 4.1.1, Figure 2):
//   * PageDesc   — the real page descriptor: back pointer to its cache, the page's
//                  offset in the segment, plus reverse mappings and threaded
//                  copy-on-write stubs.
//   * CowStub    — the per-virtual-page copy-on-write stub of section 4.3.
//   * GlobalMap  — "a single global map, hashing real page descriptors by the
//                  page's cache and its offset in the segment", where a page may be
//                  replaced by a synchronization page stub while in transit.
#ifndef GVM_SRC_PVM_PAGE_H_
#define GVM_SRC_PVM_PAGE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/gmi/types.h"
#include "src/hal/types.h"

namespace gvm {

class PvmCache;
class RegionImpl;
struct PageDesc;

// One place a frame is mapped into an MMU, kept on the owning PageDesc so that
// protection downgrades and unmapping are O(mappings), independent of region size.
// `via_cache` distinguishes the owner's own regions from *foreign* mappings —
// read-only mappings installed for a copy cache that resolved a miss by looking the
// page up in an ancestor (section 4.2.2).  Foreign mappings must be torn down
// before the owner may write the page.
struct MappingRef {
  AsId as = kInvalidAsId;
  Vaddr va = 0;
  RegionImpl* region = nullptr;
  PvmCache* via_cache = nullptr;
};

// Per-virtual-page copy-on-write stub (section 4.3).  "The stub allows to find the
// corresponding source page: if the latter is in real memory, the stub contains a
// pointer to the source page descriptor; otherwise, it contains a pointer to the
// source local-cache descriptor and its offset within the source segment."
struct CowStub {
  PvmCache* cache = nullptr;   // destination cache this stub belongs to
  SegOffset offset = 0;        // destination page offset
  PageDesc* src_page = nullptr;  // resident form: threaded on src_page->stubs
  PvmCache* src_cache = nullptr;  // non-resident form
  SegOffset src_offset = 0;
};

// Which global pageout queue a page is threaded on (DESIGN.md §15).  Unmapped
// resident pages sit on the modified queue (believed dirty: must be pushed
// before the frame can be reused) or the standby queue (believed clean or
// already pushed: the frame is reclaimable immediately, and a re-fault is a
// *soft fault* — the page is rescued from the queue with no mapper I/O).
// Mapped, pinned or in-transit pages are on no queue.  Membership is advisory:
// the daemon revalidates dirtiness at pop time and requeues mismatches.
enum class PageQueue : uint8_t { kNone, kModified, kStandby };

// Real page descriptor (section 4.1.1).
struct PageDesc {
  PvmCache* cache = nullptr;  // back pointer to the cache descriptor
  SegOffset offset = 0;       // the page's offset in the segment (page aligned)
  FrameIndex frame = kInvalidFrame;
  Prot max_prot = Prot::kAll;  // cache-level cap (cache.setProtection, read-only pullIn)
  uint32_t pin_count = 0;      // lockInMemory nesting
  bool sw_dirty = false;       // known modified relative to the segment
  bool in_transit = false;     // pushOut in progress: accesses sleep, like a sync stub
  PageQueue queue = PageQueue::kNone;  // pageout queue membership ...
  std::list<PageDesc*>::iterator queue_pos;  // ... and position (valid iff queue != kNone)
  std::vector<MappingRef> mappings;
  std::vector<CowStub*> stubs;  // stubs whose source is this page ("threaded together
                                // on a list attached to its page descriptor")
  std::list<PageDesc>::iterator self;  // position in the cache's page list
};

// Pins a page across a frame allocation.  BalanceFreeFrames frees clean
// reproducible pages *without* dropping the manager lock, so a PageDesc held
// across AllocateFrame/MaterializePage can die even when `dropped_lock` stays
// false; the pin keeps it off the victim list for the duration.
class PagePin {
 public:
  explicit PagePin(PageDesc& page) : page_(page) { ++page_.pin_count; }
  ~PagePin() { --page_.pin_count; }
  PagePin(const PagePin&) = delete;
  PagePin& operator=(const PagePin&) = delete;

 private:
  PageDesc& page_;
};

// Global map entry: a resident page, a synchronization stub (data in transit), or a
// per-virtual-page copy-on-write stub.
struct MapEntry {
  enum class Kind : uint8_t { kFrame, kSyncStub, kCowStub };
  Kind kind = Kind::kFrame;
  PageDesc* page = nullptr;            // kFrame
  std::unique_ptr<CowStub> cow;        // kCowStub (owned here; threaded raw elsewhere)
};

class GlobalMap {
 public:
  struct Key {
    CacheId cache;
    uint64_t page_index;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = k.cache * 0x9e3779b97f4a7c15ull ^ (k.page_index + 0x7f4a7c15ull);
      x ^= x >> 33;
      return static_cast<size_t>(x);
    }
  };

  MapEntry* Find(CacheId cache, uint64_t page_index) {
    auto it = map_.find(Key{cache, page_index});
    return it == map_.end() ? nullptr : &it->second;
  }

  // Inserts and returns the entry; the slot must be empty.
  MapEntry& Insert(CacheId cache, uint64_t page_index, MapEntry entry) {
    auto [it, inserted] = map_.emplace(Key{cache, page_index}, std::move(entry));
    (void)inserted;
    return it->second;
  }

  void Erase(CacheId cache, uint64_t page_index) { map_.erase(Key{cache, page_index}); }

  size_t size() const { return map_.size(); }

  size_t CountKind(MapEntry::Kind kind) const {
    size_t n = 0;
    for (const auto& [key, entry] : map_) {
      if (entry.kind == kind) {
        ++n;
      }
    }
    return n;
  }

  bool CacheHasEntryOfKind(CacheId cache, MapEntry::Kind kind) const {
    for (const auto& [key, entry] : map_) {
      if (key.cache == cache && entry.kind == kind) {
        return true;
      }
    }
    return false;
  }

  // Remove every entry belonging to `cache`, invoking `on_entry` first (used at
  // cache teardown to unlink stubs).
  template <typename Fn>
  void EraseCacheEntries(CacheId cache, Fn&& on_entry) {
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->first.cache == cache) {
        on_entry(it->second);
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : map_) {
      fn(key, entry);
    }
  }

 private:
  std::unordered_map<Key, MapEntry, KeyHash> map_;
};

}  // namespace gvm

#endif  // GVM_SRC_PVM_PAGE_H_
