// Mappers: the external servers implementing segments on secondary storage
// (section 5.1.1).  "A segment is implemented by an independent actor, its mapper
// ...  Segments are designated by sparse capabilities, containing the mapper's
// port name and a key.  ...  A mapper exports a standard read/write interface,
// invoked using the IPC mechanisms.  Some mappers are known to the Nucleus as
// defaults; these export an additional interface for the allocation of temporary
// segments."
#ifndef GVM_SRC_NUCLEUS_MAPPER_H_
#define GVM_SRC_NUCLEUS_MAPPER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/types.h"
#include "src/nucleus/ipc.h"
#include "src/util/result.h"

namespace gvm {

// The mapper wire protocol, carried in Message::operation.
enum class MapperOp : uint64_t {
  kRead = 1,        // subject=segment, arg0=offset, arg1=size -> reply data
  kWrite = 2,       // subject=segment, arg0=offset, data=payload
  kAllocTemp = 3,   // arg0=size hint -> reply subject=new segment capability
  kFree = 4,        // subject=segment: release a temporary segment
  kWriteAccess = 5, // subject=segment, arg0=offset, arg1=size: may cached data
                    // be upgraded to writable?  (coherence hooks)
  kReply = 100,
};

// Server-side implementation interface.
class Mapper {
 public:
  virtual ~Mapper() = default;

  [[nodiscard]] virtual Status Read(uint64_t key, SegOffset offset, size_t size,
                      std::vector<std::byte>* out) = 0;
  [[nodiscard]] virtual Status Write(uint64_t key, SegOffset offset, const std::byte* data,
                       size_t size) = 0;
  // Default mappers only: allocate a temporary ("swap") segment.
  virtual Result<uint64_t> AllocateTemporary(size_t size_hint) {
    (void)size_hint;
    return Status::kUnsupported;
  }
  // Sequence-aware variants used by the wire protocol (Message::arg2 carries a
  // monotonic per-kernel sequence number, 0 = unsequenced).  Crash-safe mappers
  // override these to deduplicate re-issued requests after a restart; plain
  // mappers inherit the forwarding defaults.
  [[nodiscard]] virtual Status WriteSeq(uint64_t key, SegOffset offset, const std::byte* data,
                          size_t size, uint64_t seq) {
    (void)seq;
    return Write(key, offset, data, size);
  }
  virtual Result<uint64_t> AllocateTemporarySeq(size_t size_hint, uint64_t seq) {
    (void)seq;
    return AllocateTemporary(size_hint);
  }
  // Crash simulation: returns true (once) if a crash-class fault site fired
  // inside the mapper during the last operation.  The MapperServer polls this
  // after every dispatch and, when set, dies instead of replying.
  virtual bool ConsumeCrash() { return false; }
  // A mapper that synchronizes internally may opt out of the server's
  // one-at-a-time dispatch lock.  The DSM coherent mapper must: a recall
  // dispatched under site A's server syncs site B's cache, which pushes out
  // through B's segment manager into B's server, so holding serve locks
  // across that nesting would cycle with the manager locks.  Crash-class
  // fault sites require serialized dispatch (a torn journal tail must be
  // latched before another dispatcher can append), so crash-capable mappers
  // must keep the default.
  virtual bool thread_safe_dispatch() const { return false; }
  [[nodiscard]] virtual Status Free(uint64_t key) {
    (void)key;
    return Status::kOk;
  }
  [[nodiscard]] virtual Status GetWriteAccess(uint64_t key, SegOffset offset, size_t size) {
    (void)key;
    (void)offset;
    (void)size;
    return Status::kOk;
  }
  // The access rights the cached data should carry after a read ("cached data
  // carries the access rights defined by the accessMode argument to pullIn").
  // Coherence mappers return read-only here so that writes trigger the
  // getWriteAccess upcall.
  virtual Prot FillProtection(uint64_t key, SegOffset offset, size_t size) {
    (void)key;
    (void)offset;
    (void)size;
    return Prot::kAll;
  }
};

// Binds a Mapper to a port and serves the wire protocol.  Dispatch() handles one
// already-received request synchronously (the in-process fast path the Nucleus
// uses by default); ServeLoop() pulls requests from the port on a thread, which is
// the fully message-based mode.
class MapperServer {
 public:
  MapperServer(Ipc& ipc, Mapper& mapper);
  ~MapperServer();

  PortId port() const { return port_; }

  // Handle one request message, producing the reply.
  Message Dispatch(const Message& request);

  // Crash-aware dispatch: serializes into the mapper (one request at a time,
  // like the serve thread does), refuses with kPortDead once crashed, and
  // turns a crash-site firing (in the mapper or at kCrashMapperBeforeReply)
  // into CrashNow() + kPortDead — the reply is never produced, exactly as if
  // the server process died before answering.
  Result<Message> Serve(const Message& request);

  // Serve the port on a background thread until Stop().
  void Start();
  void Stop();

  // Simulate the mapper actor dying right now: the port is destroyed (waking
  // and failing every in-flight caller), and all further dispatch is refused.
  // The mapper's in-memory state is presumed lost; only its durable store
  // survives.  Restart() revives the same port (capabilities stay valid),
  // clears the crash, and resumes the serve thread if one was running.  The
  // caller is responsible for running the mapper's recovery first.
  void CrashNow();
  void Restart();
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  uint64_t crashes() const { return crashes_.load(); }

  uint64_t requests_served() const { return requests_served_.load(); }

  // Optional fault injection at the kCrashMapperBeforeReply site.  Atomic:
  // bound while a serve thread may be mid-dispatch.
  void BindFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  void ServeLoop();

  Ipc& ipc_;
  Mapper& mapper_;
  PortId port_;         // gvm-lint: allow(annotation-coverage): set in the constructor, before any other thread sees the server
  std::thread thread_;  // gvm-lint: allow(annotation-coverage): started/joined only from the owning thread (Start/Stop/Restart)
  // Serializes dispatch into the mapper (the in-process analogue of the single
  // serve thread); rank kMapperServe sits below the mapper stores (kClient).
  // Not taken for mappers with thread_safe_dispatch() — see Serve().
  Mutex serve_mu_{Rank::kMapperServe, "MapperServer::serve_mu_"};
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};  // Start() was called (Restart resumes it)
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<FaultInjector*> injector_{nullptr};
};

// ---------------------------------------------------------------------------
// Concrete mappers
// ---------------------------------------------------------------------------

// The default "swap" mapper: sparse in-memory page store per segment key; supports
// temporary-segment allocation (the paper's default mappers, section 5.1.2).
class SwapMapper final : public Mapper {
 public:
  explicit SwapMapper(size_t page_size) : page_size_(page_size) {}

  [[nodiscard]] Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override;
  [[nodiscard]] Status Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) override;
  Result<uint64_t> AllocateTemporary(size_t size_hint) override;
  [[nodiscard]] Status Free(uint64_t key) override;

  size_t SegmentCount() const { return segments_.size(); }
  // Bytes currently stored for a segment (for swap-usage assertions).
  size_t StoredBytes(uint64_t key) const;

  // Optional fault injection at the kSwapAlloc site: backing-store exhaustion in
  // the default mapper itself (AllocateTemporary fails with kNoSwap).  Null
  // disables injection; the injector must outlive this mapper.
  void BindFaultInjector(FaultInjector* injector) { injector_ = injector; }

 private:
  const size_t page_size_;
  uint64_t next_key_ = 1;
  std::map<uint64_t, std::map<SegOffset, std::vector<std::byte>>> segments_;
  FaultInjector* injector_ = nullptr;
};

// A named-file mapper: a tiny in-memory filesystem whose files are segments.
// Stands in for the disk-based mappers of the original system.
class FileMapper final : public Mapper {
 public:
  explicit FileMapper(size_t page_size) : page_size_(page_size) {}

  // Filesystem-style interface used by test fixtures and the MIX layer.
  // Creating a file returns the key to embed in a segment capability.
  Result<uint64_t> CreateFile(const std::string& name, const void* data, size_t size);
  Result<uint64_t> LookupFile(const std::string& name) const;
  Result<size_t> FileSize(uint64_t key) const;
  std::vector<std::string> ListFiles() const;

  [[nodiscard]] Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override;
  [[nodiscard]] Status Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) override;

  int reads = 0;
  int writes = 0;

 private:
  const size_t page_size_;
  uint64_t next_key_ = 1;
  std::map<std::string, uint64_t> names_;
  std::map<uint64_t, std::vector<std::byte>> files_;
};

}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_MAPPER_H_
