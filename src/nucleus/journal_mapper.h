// A crash-safe default mapper: write-ahead intent journal over a durable page
// store.
//
// The paper puts segments behind *independent external actors* (section 5.1.1),
// which makes mapper death a survivable event only if the mapper's storage
// protocol is itself crash-consistent.  JournaledSwapMapper models the mapper
// process: its in-memory state (sequence dedup table, pending-crash latch) dies
// with every crash.  JournalStore models the disk: an append-only journal of
// checksummed, commit-marked records plus the checkpointed page area, surviving
// any number of mapper incarnations.
//
// Protocol: every mutation appends one journal record — header (magic, type,
// seq, key, offset, size, payload checksum, header checksum), payload, commit
// marker — and only then applies to the page area.  Recover() replays the
// journal from the start (idempotent: whole-page records, last writer wins),
// truncates at the first torn or corrupt record, and rebuilds the seen-sequence
// table so a re-issued request (same Message::arg2 sequence number) after a
// restart is acknowledged without being applied twice.  Consequences:
//   * a kWrite whose record committed is durable across any crash point;
//   * an uncommitted (torn) record is discarded — the write never happened,
//     which is consistent because the kernel never received its ack;
//   * re-issuing an acked-then-lost request is idempotent.
#ifndef GVM_SRC_NUCLEUS_JOURNAL_MAPPER_H_
#define GVM_SRC_NUCLEUS_JOURNAL_MAPPER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/nucleus/mapper.h"
#include "src/sync/annotated_mutex.h"

namespace gvm {

// The durable half: journal bytes + page area + allocation watermark.  Outlives
// every mapper incarnation.  Also the serialization point for concurrent
// dispatch (rank kClient: locked from inside mapper operations).
class JournalStore {
 public:
  explicit JournalStore(size_t page_size) : page_size_(page_size) {}
  JournalStore(const JournalStore&) = delete;
  JournalStore& operator=(const JournalStore&) = delete;

  size_t page_size() const { return page_size_; }

  // ---- Raw journal access for tests, tools, and CI artifacts ----
  size_t JournalBytes() const GVM_EXCLUDES(mu_);
  // Simulate a torn tail (a crash that lost the end of the log).
  void TruncateJournal(size_t bytes) GVM_EXCLUDES(mu_);
  // Simulate media corruption of a single byte.
  void FlipJournalByte(size_t index) GVM_EXCLUDES(mu_);
  // Wipe the checkpointed page area, leaving only the journal: recovery must
  // rebuild every committed write from the log alone (durability unit tests).
  void WipePageAreaForTest() GVM_EXCLUDES(mu_);
  // Number of write records ever applied to the page area (including replays).
  uint64_t applied_writes() const GVM_EXCLUDES(mu_);
  // Human-readable record walk (CI failure artifact).
  std::string DebugDump() const GVM_EXCLUDES(mu_);

 private:
  friend class JournaledSwapMapper;

  const size_t page_size_;
  mutable Mutex mu_{Rank::kClient, "JournalStore::mu_"};
  std::vector<std::byte> journal_ GVM_GUARDED_BY(mu_);
  // key -> page offset -> one page of bytes (the checkpointed page area).
  std::map<uint64_t, std::map<SegOffset, std::vector<std::byte>>> segments_
      GVM_GUARDED_BY(mu_);
  uint64_t next_key_ GVM_GUARDED_BY(mu_) = 1;
  uint64_t applied_writes_ GVM_GUARDED_BY(mu_) = 0;
};

// The volatile half: one mapper incarnation over a JournalStore.  Construct a
// fresh instance (or call Recover() on an existing one — equivalent: Recover
// wipes all in-memory state first) to model a restarted mapper process.
class JournaledSwapMapper final : public Mapper {
 public:
  struct RecoveryReport {
    uint64_t records_replayed = 0;   // committed records re-applied
    uint64_t records_discarded = 0;  // torn/corrupt records truncated
    uint64_t bytes_truncated = 0;    // journal bytes dropped with them
  };

  explicit JournaledSwapMapper(JournalStore& store) : store_(store) {}

  // Replay the journal: wipes this incarnation's in-memory state, re-applies
  // every committed record to the page area in order, truncates the journal at
  // the first torn or corrupt record, and rebuilds the sequence-dedup table.
  // Idempotent: a second replay changes nothing and reports the same counts
  // (minus the already-truncated tail).
  RecoveryReport Recover() GVM_EXCLUDES(store_.mu_);

  // ---- Mapper ----
  [[nodiscard]] Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override;
  [[nodiscard]] Status Write(uint64_t key, SegOffset offset, const std::byte* data,
               size_t size) override;
  [[nodiscard]] Status WriteSeq(uint64_t key, SegOffset offset, const std::byte* data,
                  size_t size, uint64_t seq) override;
  Result<uint64_t> AllocateTemporary(size_t size_hint) override;
  Result<uint64_t> AllocateTemporarySeq(size_t size_hint, uint64_t seq) override;
  [[nodiscard]] Status Free(uint64_t key) override;
  bool ConsumeCrash() override {
    return crash_pending_.exchange(false, std::memory_order_acq_rel);
  }

  // Crash-class injection (kCrashMapperBeforeWrite, kCrashMapperMidWrite) plus
  // the plain kSwapAlloc exhaustion site.  Null disables; the injector must
  // outlive this mapper.
  void BindFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  uint64_t duplicate_requests_ignored() const {
    return duplicates_ignored_.load();
  }

 private:
  enum class RecordType : uint8_t { kWrite = 1, kAlloc = 2, kFree = 3 };

  // Appends a commit-marked record and applies it to the page area, honouring
  // the crash sites.  Caller passes the payload (empty for alloc/free).
  [[nodiscard]] Status JournalAndApply(RecordType type, uint64_t seq, uint64_t key,
                         SegOffset offset, const std::byte* payload,
                         size_t payload_size);

  JournalStore& store_;
  std::atomic<FaultInjector*> injector_{nullptr};
  // Set when a crash site fires; the MapperServer consumes it and dies.
  std::atomic<bool> crash_pending_{false};
  std::atomic<uint64_t> duplicates_ignored_{0};
  // Sequence numbers whose records are committed (in-memory; rebuilt by
  // Recover).  Guarded by the store mutex: dispatch is already serialized
  // there.
  std::unordered_set<uint64_t> seen_seqs_ GVM_GUARDED_BY(store_.mu_);
  // Sequence number -> allocated key, so a re-issued AllocateTemporarySeq hands
  // back the key the committed original minted instead of leaking a segment.
  // Rebuilt from the journal's alloc records by Recover().
  std::map<uint64_t, uint64_t> alloc_seq_keys_ GVM_GUARDED_BY(store_.mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_JOURNAL_MAPPER_H_
