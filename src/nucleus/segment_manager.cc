#include "src/nucleus/segment_manager.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "src/util/log.h"

namespace gvm {

// The per-cache SegmentDriver: transforms GMI upcalls into mapper IPC requests
// (section 5.1.2: "the segment manager transforms a GMI upcall into IPC upcalls to
// the corresponding segment mapper").
class SegmentManagerDriver final : public SegmentDriver {
 public:
  SegmentManagerDriver(SegmentManager& manager, std::shared_ptr<Capability> segment)
      : manager_(manager), segment_(std::move(segment)) {}

  Status PullIn(Cache& cache, SegOffset offset, size_t size, Access access_mode) override {
    (void)access_mode;
    std::vector<std::byte> data;
    Prot max_prot = Prot::kAll;
    Status s = manager_.MapperRead(*segment_, offset, size, &data, &max_prot);
    if (s != Status::kOk) {
      return s;
    }
    // "The mapper replies with a message containing the required data"; the
    // manager hands it to the MM with fillUp, carrying the mapper's access cap.
    return cache.FillUp(offset, data.data(), data.size(), max_prot);
  }

  Status GetWriteAccess(Cache& cache, SegOffset offset, size_t size) override {
    (void)cache;
    return manager_.MapperWriteAccess(*segment_, offset, size);
  }

  Status PushOut(Cache& cache, SegOffset offset, size_t size) override {
    // Temporary caches get their swap segment on the first pushOut ("the segment
    // manager waits for the first pushOut upcall for such a temporary cache to
    // allocate it a 'swap' temporary segment with a default mapper").
    if (!segment_->valid()) {
      Result<Capability> segment = manager_.MapperAllocTemp(0);
      if (!segment.ok()) {
        return Status::kNoSwap;
      }
      *segment_ = *segment;
      ++manager_.stats_.temp_segments;
    }
    std::vector<std::byte> data(size);
    Status s = cache.CopyBack(offset, data.data(), size);
    if (s != Status::kOk) {
      return s;
    }
    return manager_.MapperWrite(*segment_, offset, data.data(), size);
  }

 private:
  SegmentManager& manager_;
  std::shared_ptr<Capability> segment_;
};

SegmentManager::SegmentManager(MemoryManager& mm, Ipc& ipc, Options options)
    : mm_(mm), ipc_(ipc), options_(options) {
  local_port_ = ipc_.PortCreate();
  mm_.BindSegmentRegistry(this);
}

SegmentManager::~SegmentManager() = default;

void SegmentManager::BindDefaultMapper(MapperServer* server) {
  default_mapper_ = server;
  RegisterMapper(server);
}

void SegmentManager::RegisterMapper(MapperServer* server) {
  mappers_[server->port()] = server;
}

// ---------------------------------------------------------------------------
// Mapper RPC
// ---------------------------------------------------------------------------

Result<Message> SegmentManager::MapperCall(PortId port, Message request) {
  if (options_.use_ipc_transport) {
    // Full message transport: requires the mapper's serve loop to be running.
    PortId reply_port = ipc_.PortCreate();
    request.reply_to = Capability{reply_port, 0};
    Status sent = ipc_.Send(port, std::move(request));
    if (sent != Status::kOk) {
      return sent;
    }
    Result<Message> reply = ipc_.Receive(reply_port);
    ipc_.PortDestroy(reply_port);
    return reply;
  }
  auto it = mappers_.find(port);
  if (it == mappers_.end()) {
    return Status::kNotFound;
  }
  return it->second->Dispatch(request);
}

Result<Message> SegmentManager::RetryingMapperCall(FaultSite site, PortId port,
                                                   const Message& request) {
  // All mapper operations are idempotent (reads, whole-page writes, allocation
  // of a fresh key), so a transient transport or mapper I/O failure is absorbed
  // by re-issuing the identical call.  kBusError is the only status we treat as
  // possibly-transient; kNoSwap, kNotFound etc. are answers, not line noise.
  for (uint64_t attempt = 0;; ++attempt) {
    Status s = injector_ == nullptr ? Status::kOk : injector_->Check(site);
    if (s == Status::kOk) {
      Result<Message> reply = MapperCall(port, Message(request));
      if (reply.ok() && reply->status == static_cast<int32_t>(Status::kOk)) {
        return reply;
      }
      s = reply.ok() ? static_cast<Status>(reply->status) : reply.status();
    }
    if (s != Status::kBusError) {
      return s;
    }
    if (attempt >= options_.io_retry_limit) {
      ++stats_.io_permanent_failures;
      return s;
    }
    ++stats_.io_retries;
    if (options_.retry_backoff_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.retry_backoff_us << attempt));
    }
  }
}

Status SegmentManager::MapperRead(const Capability& segment, SegOffset offset, size_t size,
                                  std::vector<std::byte>* out, Prot* max_prot) {
  ++stats_.mapper_reads;
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kRead);
  request.subject = segment;
  request.arg0 = offset;
  request.arg1 = size;
  Result<Message> reply = RetryingMapperCall(FaultSite::kMapperRead, segment.port, request);
  if (!reply.ok()) {
    return reply.status();
  }
  if (max_prot != nullptr) {
    *max_prot = static_cast<Prot>(reply->arg0);
  }
  *out = std::move(reply->data);
  return Status::kOk;
}

Status SegmentManager::MapperWrite(const Capability& segment, SegOffset offset,
                                   const std::byte* data, size_t size) {
  ++stats_.mapper_writes;
  // Large push-outs are chunked to the IPC message limit.
  for (size_t done = 0; done < size; done += Message::kMaxBytes) {
    size_t chunk = std::min(Message::kMaxBytes, size - done);
    Message request;
    request.operation = static_cast<uint64_t>(MapperOp::kWrite);
    request.subject = segment;
    request.arg0 = offset + done;
    request.data.assign(data + done, data + done + chunk);
    Result<Message> reply =
        RetryingMapperCall(FaultSite::kMapperWrite, segment.port, request);
    if (!reply.ok()) {
      return reply.status();
    }
  }
  return Status::kOk;
}

Status SegmentManager::MapperWriteAccess(const Capability& segment, SegOffset offset,
                                         size_t size) {
  if (!segment.valid()) {
    return Status::kOk;  // temporary without a swap segment yet: always writable
  }
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kWriteAccess);
  request.subject = segment;
  request.arg0 = offset;
  request.arg1 = size;
  Result<Message> reply =
      RetryingMapperCall(FaultSite::kMapperWrite, segment.port, request);
  if (!reply.ok()) {
    return reply.status();
  }
  return Status::kOk;
}

Result<Capability> SegmentManager::MapperAllocTemp(size_t size_hint) {
  if (default_mapper_ == nullptr) {
    return Status::kNoSwap;
  }
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kAllocTemp);
  request.arg0 = size_hint;
  Result<Message> reply = RetryingMapperCall(FaultSite::kMapperAllocTemp,
                                             default_mapper_->port(), request);
  if (!reply.ok()) {
    return reply.status();
  }
  return reply->subject;
}

// ---------------------------------------------------------------------------
// Cache acquisition and the segment cache (section 5.1.3)
// ---------------------------------------------------------------------------

SegmentManager::Entry* SegmentManager::FindBySegment(const Capability& segment) {
  for (Entry& entry : entries_) {
    if (!entry.temporary && *entry.segment == segment) {
      return &entry;
    }
  }
  return nullptr;
}

SegmentManager::Entry* SegmentManager::FindByCache(Cache* cache) {
  for (Entry& entry : entries_) {
    if (entry.cache == cache) {
      return &entry;
    }
  }
  return nullptr;
}

Result<Cache*> SegmentManager::AcquireCache(const Capability& segment) {
  ++stats_.lookups;
  if (Entry* entry = FindBySegment(segment)) {
    // Segment caching hit: "the manager first checks if there is a cache already
    // kept for it."
    if (entry->refs == 0) {
      unreferenced_.remove(entry);
      ++stats_.cache_hits;
    }
    entry->refs++;
    return entry->cache;
  }
  entries_.emplace_back();
  Entry* entry = &entries_.back();
  *entry->segment = segment;
  entry->refs = 1;
  entry->temporary = false;
  entry->driver = std::make_unique<SegmentManagerDriver>(*this, entry->segment);
  Result<Cache*> cache =
      mm_.CacheCreate(entry->driver.get(), "seg:" + std::to_string(segment.key));
  if (!cache.ok()) {
    entries_.pop_back();
    return cache.status();
  }
  entry->cache = *cache;
  ++stats_.caches_created;
  return entry->cache;
}

Result<Cache*> SegmentManager::AcquireTemporaryCache(std::string name) {
  entries_.emplace_back();
  Entry* entry = &entries_.back();
  entry->refs = 1;
  entry->temporary = true;
  entry->driver = std::make_unique<SegmentManagerDriver>(*this, entry->segment);
  // Temporary caches are created unbound (zero-filled on demand); the MM calls
  // SegmentCreate when it first needs to page them out.
  Result<Cache*> cache = mm_.CacheCreate(nullptr, std::move(name));
  if (!cache.ok()) {
    entries_.pop_back();
    return cache.status();
  }
  entry->cache = *cache;
  ++stats_.caches_created;
  ++temp_counter_;
  return entry->cache;
}

void SegmentManager::AddRef(Cache* cache) {
  Entry* entry = FindByCache(cache);
  assert(entry != nullptr);
  if (entry->refs == 0) {
    unreferenced_.remove(entry);
  }
  entry->refs++;
}

void SegmentManager::Release(Cache* cache) {
  Entry* entry = FindByCache(cache);
  if (entry == nullptr) {
    return;
  }
  assert(entry->refs > 0);
  if (--entry->refs > 0) {
    return;
  }
  if (entry->temporary) {
    // Unreferenced temporary data is garbage; discard immediately.
    DestroyEntry(entry);
    return;
  }
  // Keep the unreferenced cache "as long as possible" (section 5.1.3).
  unreferenced_.push_back(entry);
  TrimCachePool();
}

void SegmentManager::TrimCachePool() {
  while (unreferenced_.size() > options_.cache_capacity) {
    Entry* oldest = unreferenced_.front();
    unreferenced_.pop_front();
    DestroyEntry(oldest);
    ++stats_.caches_discarded;
  }
}

void SegmentManager::DestroyEntry(Entry* entry) {
  if (entry->cache != nullptr) {
    entry->cache->Destroy();
  }
  // The memory manager may still hold the cache in a "dying" state (section
  // 4.2.5), and dying caches keep using their driver for swap pull-ins.  Park the
  // driver in the graveyard instead of freeing it.  The swap segment itself is
  // likewise retained (dying caches may page against it); both are reclaimed when
  // the manager is torn down.
  driver_graveyard_.push_back(std::move(entry->driver));
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (&*it == entry) {
      entries_.erase(it);
      break;
    }
  }
}

SegmentDriver* SegmentManager::SegmentCreate(Cache& cache) {
  // The MM created a cache unilaterally (history/working object) or a temporary
  // cache needs backing: register it and hand out a driver whose swap segment is
  // allocated lazily on the first pushOut.
  if (Entry* existing = FindByCache(&cache)) {
    return existing->driver.get();
  }
  entries_.emplace_back();
  Entry* entry = &entries_.back();
  entry->cache = &cache;
  entry->refs = 0;  // MM-owned; lifetime is the MM's business
  entry->temporary = true;
  entry->driver = std::make_unique<SegmentManagerDriver>(*this, entry->segment);
  return entry->driver.get();
}

Result<Capability> SegmentManager::LocalCacheCapability(Cache* cache) {
  Entry* entry = FindByCache(cache);
  if (entry == nullptr) {
    return Status::kNotFound;
  }
  if (entry->local_key == 0) {
    entry->local_key = next_local_key_++;
  }
  return Capability{local_port_, entry->local_key};
}

Result<Cache*> SegmentManager::ResolveLocalCache(const Capability& cap) {
  if (cap.port != local_port_) {
    return Status::kPermissionDenied;
  }
  for (Entry& entry : entries_) {
    if (entry.local_key == cap.key) {
      return entry.cache;
    }
  }
  return Status::kNotFound;
}

size_t SegmentManager::CachedSegmentCount() const { return unreferenced_.size(); }

}  // namespace gvm
