#include "src/nucleus/segment_manager.h"

#include <cassert>
#include <chrono>
#include <thread>
#include <vector>

#include "src/util/log.h"

namespace gvm {

// The per-cache SegmentDriver: transforms GMI upcalls into mapper IPC requests
// (section 5.1.2: "the segment manager transforms a GMI upcall into IPC upcalls to
// the corresponding segment mapper").  Drivers run on any faulting thread with
// the MM lock dropped; the segment slot they share with the manager is read and
// written only through SnapshotSegment/AdoptTempSegment (under the manager lock).
class SegmentManagerDriver final : public SegmentDriver {
 public:
  SegmentManagerDriver(SegmentManager& manager, std::shared_ptr<Capability> segment)
      : manager_(manager), segment_(std::move(segment)) {}

  Status PullIn(Cache& cache, SegOffset offset, size_t size, Access access_mode) override {
    (void)access_mode;
    Capability segment = manager_.SnapshotSegment(segment_);
    std::vector<std::byte> data;
    Prot max_prot = Prot::kAll;
    Status s = manager_.MapperRead(segment, offset, size, &data, &max_prot);
    if (s != Status::kOk) {
      return s;
    }
    // "The mapper replies with a message containing the required data"; the
    // manager hands it to the MM with fillUp, carrying the mapper's access cap.
    return cache.FillUp(offset, data.data(), data.size(), max_prot);
  }

  Status GetWriteAccess(Cache& cache, SegOffset offset, size_t size) override {
    (void)cache;
    return manager_.MapperWriteAccess(manager_.SnapshotSegment(segment_), offset, size);
  }

  Status PushOut(Cache& cache, SegOffset offset, size_t size) override {
    // Temporary caches get their swap segment on the first pushOut ("the segment
    // manager waits for the first pushOut upcall for such a temporary cache to
    // allocate it a 'swap' temporary segment with a default mapper").  Two
    // threads can race the first pushOut; AdoptTempSegment keeps the winner's
    // segment and frees the loser's.
    Capability segment = manager_.SnapshotSegment(segment_);
    if (!segment.valid()) {
      Result<Capability> fresh = manager_.MapperAllocTemp(0);
      if (!fresh.ok()) {
        return fresh.status() == Status::kPortDead ? Status::kPortDead
                                                   : Status::kNoSwap;
      }
      segment = manager_.AdoptTempSegment(segment_, *fresh);
    }
    std::vector<std::byte> data(size);
    Status s = cache.CopyBack(offset, data.data(), size);
    if (s != Status::kOk) {
      return s;
    }
    return manager_.MapperWrite(segment, offset, data.data(), size);
  }

 private:
  SegmentManager& manager_;
  std::shared_ptr<Capability> segment_;
};

SegmentManager::SegmentManager(MemoryManager& mm, Ipc& ipc, Options options)
    : mm_(mm), ipc_(ipc), options_(options), local_port_(ipc.PortCreate()) {
  mm_.BindSegmentRegistry(this);
}

SegmentManager::~SegmentManager() = default;

void SegmentManager::BindDefaultMapper(MapperServer* server) {
  MutexLock lock(mu_);
  default_mapper_ = server;
  mappers_[server->port()] = server;
}

void SegmentManager::RegisterMapper(MapperServer* server) {
  MutexLock lock(mu_);
  mappers_[server->port()] = server;
}

// ---------------------------------------------------------------------------
// Mapper RPC
// ---------------------------------------------------------------------------

Capability SegmentManager::SnapshotSegment(
    const std::shared_ptr<Capability>& slot) const {
  MutexLock lock(mu_);
  return *slot;
}

Capability SegmentManager::AdoptTempSegment(const std::shared_ptr<Capability>& slot,
                                            const Capability& fresh) {
  Capability winner;
  bool lost = false;
  {
    MutexLock lock(mu_);
    if (slot->valid()) {
      winner = *slot;
      lost = true;
    } else {
      *slot = fresh;
      winner = fresh;
      ++stats_.temp_segments;
    }
  }
  if (lost) {
    (void)MapperFree(fresh);
  }
  return winner;
}

Result<Message> SegmentManager::MapperCall(PortId port, Message request) {
  if (options_.use_ipc_transport) {
    // Full message transport: requires the mapper's serve loop to be running.
    // Call() death-links the reply port to the mapper and bounds the round trip,
    // so a crash mid-request surfaces as kPortDead (and a wedged mapper as
    // kTimeout) instead of a hang.
    return ipc_.Call(port, std::move(request), options_.rpc_deadline_us);
  }
  MapperServer* server = nullptr;
  {
    MutexLock lock(mu_);
    auto it = mappers_.find(port);
    if (it == mappers_.end()) {
      return Status::kNotFound;
    }
    server = it->second;
  }
  // Serve() is the in-process analogue of the full transport: it refuses with
  // kPortDead once the server crashed, and a crash site firing mid-dispatch
  // kills the server and eats the reply.
  return server->Serve(request);
}

Result<Message> SegmentManager::RetryingMapperCall(FaultSite site, PortId port,
                                                   const Message& request) {
  // Mapper operations are idempotent — reads, sequence-numbered writes and
  // allocations — so a transient failure is absorbed by re-issuing the
  // *identical* call (same Message, same sequence number: a mapper that applied
  // the original but lost the ack deduplicates the re-issue).  kBusError
  // (transport or mapper I/O) and kTimeout (deadline) are the possibly-transient
  // statuses; kPortDead means the mapper is gone until somebody recovers it, so
  // retrying here would only stall the kernel — fail fast instead.  kNoSwap,
  // kNotFound etc. are answers, not line noise.
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  for (uint64_t attempt = 0;; ++attempt) {
    Status s = injector == nullptr ? Status::kOk : injector->Check(site);
    if (s == Status::kOk) {
      Result<Message> reply = MapperCall(port, Message(request));
      if (reply.ok() && reply->status == static_cast<int32_t>(Status::kOk)) {
        return reply;
      }
      s = reply.ok() ? static_cast<Status>(reply->status) : reply.status();
    }
    if (s == Status::kPortDead) {
      MutexLock lock(mu_);
      ++stats_.rpc_port_deaths;
      return s;
    }
    if (s != Status::kBusError && s != Status::kTimeout) {
      return s;
    }
    if (attempt >= options_.io_retry_limit) {
      MutexLock lock(mu_);
      ++stats_.io_permanent_failures;
      return s;
    }
    {
      MutexLock lock(mu_);
      ++stats_.io_retries;
      if (s == Status::kTimeout) {
        ++stats_.rpc_timeouts;
      }
    }
    if (options_.retry_backoff_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.retry_backoff_us << attempt));
    }
  }
}

Status SegmentManager::MapperRead(const Capability& segment, SegOffset offset, size_t size,
                                  std::vector<std::byte>* out, Prot* max_prot) {
  {
    MutexLock lock(mu_);
    ++stats_.mapper_reads;
  }
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kRead);
  request.subject = segment;
  request.arg0 = offset;
  request.arg1 = size;
  Result<Message> reply = RetryingMapperCall(FaultSite::kMapperRead, segment.port, request);
  if (!reply.ok()) {
    return reply.status();
  }
  if (max_prot != nullptr) {
    *max_prot = static_cast<Prot>(reply->arg0);
  }
  *out = std::move(reply->data);
  return Status::kOk;
}

Status SegmentManager::MapperWrite(const Capability& segment, SegOffset offset,
                                   const std::byte* data, size_t size) {
  {
    MutexLock lock(mu_);
    ++stats_.mapper_writes;
  }
  // Large push-outs are chunked to the IPC message limit.  Each chunk is one
  // logical RPC with its own sequence number, re-used verbatim across retries.
  for (size_t done = 0; done < size; done += Message::kMaxBytes) {
    size_t chunk = std::min(Message::kMaxBytes, size - done);
    Message request;
    request.operation = static_cast<uint64_t>(MapperOp::kWrite);
    request.subject = segment;
    request.arg0 = offset + done;
    request.arg2 = next_rpc_seq_.fetch_add(1, std::memory_order_relaxed);
    request.data.assign(data + done, data + done + chunk);
    Result<Message> reply =
        RetryingMapperCall(FaultSite::kMapperWrite, segment.port, request);
    if (!reply.ok()) {
      return reply.status();
    }
  }
  return Status::kOk;
}

Status SegmentManager::MapperWriteAccess(const Capability& segment, SegOffset offset,
                                         size_t size) {
  if (!segment.valid()) {
    return Status::kOk;  // temporary without a swap segment yet: always writable
  }
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kWriteAccess);
  request.subject = segment;
  request.arg0 = offset;
  request.arg1 = size;
  Result<Message> reply =
      RetryingMapperCall(FaultSite::kMapperWrite, segment.port, request);
  if (!reply.ok()) {
    return reply.status();
  }
  return Status::kOk;
}

Result<Capability> SegmentManager::MapperAllocTemp(size_t size_hint) {
  PortId port = kInvalidPort;
  {
    MutexLock lock(mu_);
    if (default_mapper_ == nullptr) {
      return Status::kNoSwap;
    }
    port = default_mapper_->port();
  }
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kAllocTemp);
  request.arg0 = size_hint;
  request.arg2 = next_rpc_seq_.fetch_add(1, std::memory_order_relaxed);
  Result<Message> reply =
      RetryingMapperCall(FaultSite::kMapperAllocTemp, port, request);
  if (!reply.ok()) {
    return reply.status();
  }
  return reply->subject;
}

Status SegmentManager::MapperFree(const Capability& segment) {
  Message request;
  request.operation = static_cast<uint64_t>(MapperOp::kFree);
  request.subject = segment;
  Result<Message> reply =
      RetryingMapperCall(FaultSite::kMapperWrite, segment.port, request);
  return reply.ok() ? Status::kOk : reply.status();
}

// ---------------------------------------------------------------------------
// Cache acquisition and the segment cache (section 5.1.3)
// ---------------------------------------------------------------------------

SegmentManager::Entry* SegmentManager::FindBySegment(const Capability& segment) {
  for (Entry& entry : entries_) {
    if (!entry.temporary && *entry.segment == segment) {
      return &entry;
    }
  }
  return nullptr;
}

SegmentManager::Entry* SegmentManager::FindByCache(Cache* cache) {
  for (Entry& entry : entries_) {
    if (entry.cache == cache) {
      return &entry;
    }
  }
  return nullptr;
}

Result<Cache*> SegmentManager::AcquireCache(const Capability& segment) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  if (Entry* entry = FindBySegment(segment)) {
    // Segment caching hit: "the manager first checks if there is a cache already
    // kept for it."
    if (entry->refs == 0) {
      unreferenced_.remove(entry);
      ++stats_.cache_hits;
    }
    entry->refs++;
    return entry->cache;
  }
  entries_.emplace_back();
  Entry* entry = &entries_.back();
  *entry->segment = segment;
  entry->refs = 1;
  entry->temporary = false;
  entry->driver = std::make_unique<SegmentManagerDriver>(*this, entry->segment);
  Result<Cache*> cache =
      mm_.CacheCreate(entry->driver.get(), "seg:" + std::to_string(segment.key));
  if (!cache.ok()) {
    entries_.pop_back();
    return cache.status();
  }
  entry->cache = *cache;
  ++stats_.caches_created;
  return entry->cache;
}

Result<Cache*> SegmentManager::AcquireTemporaryCache(std::string name) {
  MutexLock lock(mu_);
  entries_.emplace_back();
  Entry* entry = &entries_.back();
  entry->refs = 1;
  entry->temporary = true;
  entry->driver = std::make_unique<SegmentManagerDriver>(*this, entry->segment);
  // Temporary caches are created unbound (zero-filled on demand); the MM calls
  // SegmentCreate when it first needs to page them out.
  Result<Cache*> cache = mm_.CacheCreate(nullptr, std::move(name));
  if (!cache.ok()) {
    entries_.pop_back();
    return cache.status();
  }
  entry->cache = *cache;
  ++stats_.caches_created;
  ++temp_counter_;
  return entry->cache;
}

void SegmentManager::AddRef(Cache* cache) {
  MutexLock lock(mu_);
  Entry* entry = FindByCache(cache);
  assert(entry != nullptr);
  if (entry->refs == 0) {
    unreferenced_.remove(entry);
  }
  entry->refs++;
}

void SegmentManager::Release(Cache* cache) {
  // Collect the caches to destroy under the lock, destroy them after releasing
  // it: Cache::Destroy may push dirty pages out, which re-enters this manager
  // through the driver upcalls.
  std::vector<Cache*> doomed;
  {
    MutexLock lock(mu_);
    Entry* entry = FindByCache(cache);
    if (entry == nullptr) {
      return;
    }
    assert(entry->refs > 0);
    if (--entry->refs > 0) {
      return;
    }
    if (entry->temporary) {
      // Unreferenced temporary data is garbage; discard immediately.
      doomed.push_back(DetachEntryLocked(entry));
    } else {
      // Keep the unreferenced cache "as long as possible" (section 5.1.3).
      unreferenced_.push_back(entry);
      while (unreferenced_.size() > options_.cache_capacity) {
        Entry* oldest = unreferenced_.front();
        unreferenced_.pop_front();
        doomed.push_back(DetachEntryLocked(oldest));
        ++stats_.caches_discarded;
      }
    }
  }
  for (Cache* victim : doomed) {
    if (victim != nullptr) {
      (void)victim->Destroy();
    }
  }
}

Cache* SegmentManager::DetachEntryLocked(Entry* entry) {
  Cache* cache = entry->cache;
  // The memory manager may still hold the cache in a "dying" state (section
  // 4.2.5), and dying caches keep using their driver for swap pull-ins.  Park the
  // driver in the graveyard instead of freeing it.  The swap segment itself is
  // likewise retained (dying caches may page against it); both are reclaimed when
  // the manager is torn down.
  driver_graveyard_.push_back(std::move(entry->driver));
  unreferenced_.remove(entry);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (&*it == entry) {
      entries_.erase(it);
      break;
    }
  }
  return cache;
}

SegmentDriver* SegmentManager::SegmentCreate(Cache& cache) {
  // The MM created a cache unilaterally (history/working object) or a temporary
  // cache needs backing: register it and hand out a driver whose swap segment is
  // allocated lazily on the first pushOut.
  MutexLock lock(mu_);
  if (Entry* existing = FindByCache(&cache)) {
    return existing->driver.get();
  }
  entries_.emplace_back();
  Entry* entry = &entries_.back();
  entry->cache = &cache;
  entry->refs = 0;  // MM-owned; lifetime is the MM's business
  entry->temporary = true;
  entry->driver = std::make_unique<SegmentManagerDriver>(*this, entry->segment);
  return entry->driver.get();
}

// ---------------------------------------------------------------------------
// Mapper crash recovery (DESIGN.md §11)
// ---------------------------------------------------------------------------

void SegmentManager::MapperRecovered(MapperServer* server, uint64_t records_replayed,
                                     uint64_t records_discarded) {
  std::vector<Cache*> affected;
  {
    MutexLock lock(mu_);
    ++stats_.recoveries;
    for (Entry& entry : entries_) {
      if (entry.cache == nullptr) {
        continue;
      }
      // Valid capability: routed by port.  Invalid capability: an unbacked
      // temporary whose first pushOut would go to the default mapper — if that
      // is the one that crashed, it may be sitting degraded on a failed
      // first-pushOut and needs the same re-drive.
      const bool routed = entry.segment->valid()
                              ? entry.segment->port == server->port()
                              : server == default_mapper_;
      if (routed) {
        affected.push_back(entry.cache);
      }
    }
  }
  // Sync() re-issues every requeued dirty page (pushOut); the first success
  // clears the cache's degraded flag and wakes the threads sleeping on its
  // pages.  Caches with nothing dirty are a no-op.  A still-failing sync leaves
  // the cache degraded — recovery is only complete when the pushes land.
  for (Cache* cache : affected) {
    Status s = cache->Sync();
    if (s != Status::kOk) {
      GVM_LOG(Debug) << "post-recovery sync failed: " << StatusName(s);
    }
  }
  mm_.NoteMapperRecovery(records_replayed, records_discarded);
}

Result<Capability> SegmentManager::LocalCacheCapability(Cache* cache) {
  MutexLock lock(mu_);
  Entry* entry = FindByCache(cache);
  if (entry == nullptr) {
    return Status::kNotFound;
  }
  if (entry->local_key == 0) {
    entry->local_key = next_local_key_++;
  }
  return Capability{local_port_, entry->local_key};
}

Result<Cache*> SegmentManager::ResolveLocalCache(const Capability& cap) {
  if (cap.port != local_port_) {
    return Status::kPermissionDenied;
  }
  MutexLock lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.local_key == cap.key) {
      return entry.cache;
    }
  }
  return Status::kNotFound;
}

size_t SegmentManager::CachedSegmentCount() const {
  MutexLock lock(mu_);
  return unreferenced_.size();
}

}  // namespace gvm
