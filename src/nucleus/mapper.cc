#include "src/nucleus/mapper.h"

#include <cstring>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

// ---------------------------------------------------------------------------
// MapperServer
// ---------------------------------------------------------------------------

MapperServer::MapperServer(Ipc& ipc, Mapper& mapper) : ipc_(ipc), mapper_(mapper) {
  port_ = ipc_.PortCreate();
}

MapperServer::~MapperServer() { Stop(); }

Message MapperServer::Dispatch(const Message& request) {
  ++requests_served_;
  Message reply;
  reply.operation = static_cast<uint64_t>(MapperOp::kReply);
  reply.subject = request.subject;
  switch (static_cast<MapperOp>(request.operation)) {
    case MapperOp::kRead: {
      std::vector<std::byte> data;
      Status s = mapper_.Read(request.subject.key, request.arg0,
                              static_cast<size_t>(request.arg1), &data);
      reply.status = static_cast<int32_t>(s);
      reply.data = std::move(data);
      reply.arg0 = static_cast<uint64_t>(mapper_.FillProtection(
          request.subject.key, request.arg0, static_cast<size_t>(request.arg1)));
      break;
    }
    case MapperOp::kWrite: {
      Status s = mapper_.WriteSeq(request.subject.key, request.arg0, request.data.data(),
                                  request.data.size(), request.arg2);
      reply.status = static_cast<int32_t>(s);
      break;
    }
    case MapperOp::kAllocTemp: {
      Result<uint64_t> key =
          mapper_.AllocateTemporarySeq(static_cast<size_t>(request.arg0), request.arg2);
      if (key.ok()) {
        reply.subject = Capability{port_, *key};
        reply.status = static_cast<int32_t>(Status::kOk);
      } else {
        reply.status = static_cast<int32_t>(key.status());
      }
      break;
    }
    case MapperOp::kFree:
      reply.status = static_cast<int32_t>(mapper_.Free(request.subject.key));
      break;
    case MapperOp::kWriteAccess:
      reply.status = static_cast<int32_t>(mapper_.GetWriteAccess(
          request.subject.key, request.arg0, static_cast<size_t>(request.arg1)));
      break;
    default:
      reply.status = static_cast<int32_t>(Status::kUnsupported);
      break;
  }
  return reply;
}

Result<Message> MapperServer::Serve(const Message& request) {
  if (crashed()) {
    return Status::kPortDead;
  }
  // Internally-synchronized mappers (DSM coherence) dispatch without the
  // serve lock: their recalls nest servers across sites, and serve locks held
  // across that nesting would form a lock-order cycle with the segment
  // managers.  Crash sites live only in serialized mappers, so the crash
  // bookkeeping below is not needed here.
  if (mapper_.thread_safe_dispatch()) {
    return Dispatch(request);
  }
  Message reply;
  {
    MutexLock lock(serve_mu_);
    if (crashed()) {
      return Status::kPortDead;
    }
    reply = Dispatch(request);
    // Crash sites hosted inside the mapper (kCrashMapperBeforeWrite /
    // kCrashMapperMidWrite) latch a pending crash instead of returning an
    // error; the server is the "process" that actually dies.
    bool crash = mapper_.ConsumeCrash();
    if (!crash) {
      FaultInjector* injector = injector_.load(std::memory_order_acquire);
      if (injector != nullptr &&
          injector->Check(FaultSite::kCrashMapperBeforeReply) != Status::kOk) {
        crash = true;
      }
    }
    if (crash) {
      // The crash must become visible before another dispatcher can enter:
      // a mid-write crash leaves a torn record at the journal tail, and a
      // write committed after that tail would be acked yet discarded by
      // recovery's truncation.  CrashNow only touches atomics and the IPC
      // port table, so it is safe under serve_mu_.
      CrashNow();
      return Status::kPortDead;  // the reply dies with the server
    }
  }
  return reply;
}

void MapperServer::Start() {
  if (running_.exchange(true)) {
    return;
  }
  started_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
}

void MapperServer::Stop() {
  started_.store(false);
  if (!running_.exchange(false)) {
    return;
  }
  // Poke the port so the loop wakes and observes `running_ == false`.  On a
  // crashed server the port is dead and the send fails, but the loop has
  // already exited — the join below still reaps the thread.
  Message poke;
  poke.operation = 0;
  (void)ipc_.Send(port_, std::move(poke));
  if (thread_.joinable()) {
    thread_.join();
  }
}

void MapperServer::CrashNow() {
  if (crashed_.exchange(true)) {
    return;
  }
  ++crashes_;
  // Killing the port wakes the serve loop (kPortDead) and every death-linked
  // caller; queued requests are dropped on revive.
  ipc_.PortDestroy(port_);
}

void MapperServer::Restart() {
  if (!crashed()) {
    return;  // only a crashed server needs (or tolerates) reviving
  }
  // Reap the serve thread (it exited when the port died).
  if (thread_.joinable()) {
    running_.store(false);
    thread_.join();
  }
  ipc_.PortRevive(port_);
  crashed_.store(false);
  if (started_.load()) {
    running_.store(false);
    Start();
  }
}

void MapperServer::ServeLoop() {
  while (running_.load()) {
    Result<Message> request = ipc_.Receive(port_);
    if (!request.ok()) {
      if (request.status() == Status::kNotFound ||
          request.status() == Status::kPortDead) {
        return;  // port destroyed (shutdown or crash)
      }
      continue;  // transient receive fault (e.g. injected): the request is
                 // still queued, pick it up on the next round
    }
    if (request->operation == 0) {
      continue;  // shutdown poke
    }
    Result<Message> reply = Serve(*request);
    if (!reply.ok()) {
      return;  // crashed mid-dispatch: no reply, the loop dies with the port
    }
    if (request->reply_to.valid()) {
      (void)ipc_.Send(request->reply_to.port, std::move(*reply));
    }
  }
}

// ---------------------------------------------------------------------------
// SwapMapper
// ---------------------------------------------------------------------------

Status SwapMapper::Read(uint64_t key, SegOffset offset, size_t size,
                        std::vector<std::byte>* out) {
  auto seg = segments_.find(key);
  if (seg == segments_.end()) {
    return Status::kNotFound;
  }
  out->assign(size, std::byte{0});
  for (size_t done = 0; done < size; done += page_size_) {
    auto page = seg->second.find(offset + done);
    if (page != seg->second.end()) {
      std::memcpy(out->data() + done, page->second.data(),
                  std::min(page_size_, size - done));
    }
  }
  return Status::kOk;
}

Status SwapMapper::Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) {
  auto seg = segments_.find(key);
  if (seg == segments_.end()) {
    return Status::kNotFound;
  }
  for (size_t done = 0; done < size; done += page_size_) {
    auto& page = seg->second[offset + done];
    page.assign(page_size_, std::byte{0});
    std::memcpy(page.data(), data + done, std::min(page_size_, size - done));
  }
  return Status::kOk;
}

Result<uint64_t> SwapMapper::AllocateTemporary(size_t size_hint) {
  (void)size_hint;
  if (injector_ != nullptr && injector_->Check(FaultSite::kSwapAlloc) != Status::kOk) {
    return Status::kNoSwap;
  }
  uint64_t key = next_key_++;
  segments_[key];
  return key;
}

Status SwapMapper::Free(uint64_t key) {
  segments_.erase(key);
  return Status::kOk;
}

size_t SwapMapper::StoredBytes(uint64_t key) const {
  auto seg = segments_.find(key);
  if (seg == segments_.end()) {
    return 0;
  }
  return seg->second.size() * page_size_;
}

// ---------------------------------------------------------------------------
// FileMapper
// ---------------------------------------------------------------------------

Result<uint64_t> FileMapper::CreateFile(const std::string& name, const void* data,
                                        size_t size) {
  if (names_.contains(name)) {
    return Status::kAlreadyExists;
  }
  uint64_t key = next_key_++;
  names_[name] = key;
  auto& file = files_[key];
  file.resize(AlignUp(size, page_size_));  // mappers serve whole pages
  std::memcpy(file.data(), data, size);
  return key;
}

Result<uint64_t> FileMapper::LookupFile(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

Result<size_t> FileMapper::FileSize(uint64_t key) const {
  auto it = files_.find(key);
  if (it == files_.end()) {
    return Status::kNotFound;
  }
  return it->second.size();
}

std::vector<std::string> FileMapper::ListFiles() const {
  std::vector<std::string> names;
  for (const auto& [name, key] : names_) {
    names.push_back(name);
  }
  return names;
}

Status FileMapper::Read(uint64_t key, SegOffset offset, size_t size,
                        std::vector<std::byte>* out) {
  ++reads;
  auto it = files_.find(key);
  if (it == files_.end()) {
    return Status::kNotFound;
  }
  out->assign(size, std::byte{0});
  if (offset < it->second.size()) {
    size_t available = it->second.size() - offset;
    std::memcpy(out->data(), it->second.data() + offset, std::min(size, available));
  }
  return Status::kOk;
}

Status FileMapper::Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) {
  ++writes;
  auto it = files_.find(key);
  if (it == files_.end()) {
    return Status::kNotFound;
  }
  if (offset + size > it->second.size()) {
    it->second.resize(AlignUp(offset + size, page_size_));
  }
  std::memcpy(it->second.data() + offset, data, size);
  return Status::kOk;
}

}  // namespace gvm
