#include "src/nucleus/mapper.h"

#include <cstring>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

// ---------------------------------------------------------------------------
// MapperServer
// ---------------------------------------------------------------------------

MapperServer::MapperServer(Ipc& ipc, Mapper& mapper) : ipc_(ipc), mapper_(mapper) {
  port_ = ipc_.PortCreate();
}

MapperServer::~MapperServer() { Stop(); }

Message MapperServer::Dispatch(const Message& request) {
  ++requests_served_;
  Message reply;
  reply.operation = static_cast<uint64_t>(MapperOp::kReply);
  reply.subject = request.subject;
  switch (static_cast<MapperOp>(request.operation)) {
    case MapperOp::kRead: {
      std::vector<std::byte> data;
      Status s = mapper_.Read(request.subject.key, request.arg0,
                              static_cast<size_t>(request.arg1), &data);
      reply.status = static_cast<int32_t>(s);
      reply.data = std::move(data);
      reply.arg0 = static_cast<uint64_t>(mapper_.FillProtection(
          request.subject.key, request.arg0, static_cast<size_t>(request.arg1)));
      break;
    }
    case MapperOp::kWrite: {
      Status s = mapper_.Write(request.subject.key, request.arg0, request.data.data(),
                               request.data.size());
      reply.status = static_cast<int32_t>(s);
      break;
    }
    case MapperOp::kAllocTemp: {
      Result<uint64_t> key = mapper_.AllocateTemporary(static_cast<size_t>(request.arg0));
      if (key.ok()) {
        reply.subject = Capability{port_, *key};
        reply.status = static_cast<int32_t>(Status::kOk);
      } else {
        reply.status = static_cast<int32_t>(key.status());
      }
      break;
    }
    case MapperOp::kFree:
      reply.status = static_cast<int32_t>(mapper_.Free(request.subject.key));
      break;
    case MapperOp::kWriteAccess:
      reply.status = static_cast<int32_t>(mapper_.GetWriteAccess(
          request.subject.key, request.arg0, static_cast<size_t>(request.arg1)));
      break;
    default:
      reply.status = static_cast<int32_t>(Status::kUnsupported);
      break;
  }
  return reply;
}

void MapperServer::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = std::thread([this] { ServeLoop(); });
}

void MapperServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Poke the port so the loop wakes and observes `running_ == false`.
  Message poke;
  poke.operation = 0;
  ipc_.Send(port_, std::move(poke));
  if (thread_.joinable()) {
    thread_.join();
  }
}

void MapperServer::ServeLoop() {
  while (running_.load()) {
    Result<Message> request = ipc_.Receive(port_);
    if (!request.ok()) {
      if (request.status() == Status::kNotFound) {
        return;  // port destroyed
      }
      continue;  // transient receive fault (e.g. injected): the request is
                 // still queued, pick it up on the next round
    }
    if (request->operation == 0) {
      continue;  // shutdown poke
    }
    Message reply = Dispatch(*request);
    if (request->reply_to.valid()) {
      ipc_.Send(request->reply_to.port, std::move(reply));
    }
  }
}

// ---------------------------------------------------------------------------
// SwapMapper
// ---------------------------------------------------------------------------

Status SwapMapper::Read(uint64_t key, SegOffset offset, size_t size,
                        std::vector<std::byte>* out) {
  auto seg = segments_.find(key);
  if (seg == segments_.end()) {
    return Status::kNotFound;
  }
  out->assign(size, std::byte{0});
  for (size_t done = 0; done < size; done += page_size_) {
    auto page = seg->second.find(offset + done);
    if (page != seg->second.end()) {
      std::memcpy(out->data() + done, page->second.data(),
                  std::min(page_size_, size - done));
    }
  }
  return Status::kOk;
}

Status SwapMapper::Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) {
  auto seg = segments_.find(key);
  if (seg == segments_.end()) {
    return Status::kNotFound;
  }
  for (size_t done = 0; done < size; done += page_size_) {
    auto& page = seg->second[offset + done];
    page.assign(page_size_, std::byte{0});
    std::memcpy(page.data(), data + done, std::min(page_size_, size - done));
  }
  return Status::kOk;
}

Result<uint64_t> SwapMapper::AllocateTemporary(size_t size_hint) {
  (void)size_hint;
  if (injector_ != nullptr && injector_->Check(FaultSite::kSwapAlloc) != Status::kOk) {
    return Status::kNoSwap;
  }
  uint64_t key = next_key_++;
  segments_[key];
  return key;
}

Status SwapMapper::Free(uint64_t key) {
  segments_.erase(key);
  return Status::kOk;
}

size_t SwapMapper::StoredBytes(uint64_t key) const {
  auto seg = segments_.find(key);
  if (seg == segments_.end()) {
    return 0;
  }
  return seg->second.size() * page_size_;
}

// ---------------------------------------------------------------------------
// FileMapper
// ---------------------------------------------------------------------------

Result<uint64_t> FileMapper::CreateFile(const std::string& name, const void* data,
                                        size_t size) {
  if (names_.contains(name)) {
    return Status::kAlreadyExists;
  }
  uint64_t key = next_key_++;
  names_[name] = key;
  auto& file = files_[key];
  file.resize(AlignUp(size, page_size_));  // mappers serve whole pages
  std::memcpy(file.data(), data, size);
  return key;
}

Result<uint64_t> FileMapper::LookupFile(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::kNotFound;
  }
  return it->second;
}

Result<size_t> FileMapper::FileSize(uint64_t key) const {
  auto it = files_.find(key);
  if (it == files_.end()) {
    return Status::kNotFound;
  }
  return it->second.size();
}

std::vector<std::string> FileMapper::ListFiles() const {
  std::vector<std::string> names;
  for (const auto& [name, key] : names_) {
    names.push_back(name);
  }
  return names;
}

Status FileMapper::Read(uint64_t key, SegOffset offset, size_t size,
                        std::vector<std::byte>* out) {
  ++reads;
  auto it = files_.find(key);
  if (it == files_.end()) {
    return Status::kNotFound;
  }
  out->assign(size, std::byte{0});
  if (offset < it->second.size()) {
    size_t available = it->second.size() - offset;
    std::memcpy(out->data(), it->second.data() + offset, std::min(size, available));
  }
  return Status::kOk;
}

Status FileMapper::Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) {
  ++writes;
  auto it = files_.find(key);
  if (it == files_.end()) {
    return Status::kNotFound;
  }
  if (offset + size > it->second.size()) {
    it->second.resize(AlignUp(offset + size, page_size_));
  }
  std::memcpy(it->second.data() + offset, data, size);
  return Status::kOk;
}

}  // namespace gvm
