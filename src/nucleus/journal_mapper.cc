#include "src/nucleus/journal_mapper.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/nucleus/journal_record.h"

namespace gvm {

// The record encoding (magic, checksums, commit marker) lives in
// journal_record.h, shared with the DSM directory's WAL.
using journal::kHeaderBytes;
using journal::ParseRecord;
using journal::RecordView;
using journal::SerializeRecord;

// ---------------------------------------------------------------------------
// JournalStore
// ---------------------------------------------------------------------------

size_t JournalStore::JournalBytes() const {
  MutexLock lock(mu_);
  return journal_.size();
}

void JournalStore::TruncateJournal(size_t bytes) {
  MutexLock lock(mu_);
  if (bytes < journal_.size()) {
    journal_.resize(bytes);
  }
}

void JournalStore::FlipJournalByte(size_t index) {
  MutexLock lock(mu_);
  if (index < journal_.size()) {
    journal_[index] = static_cast<std::byte>(static_cast<uint8_t>(journal_[index]) ^ 0xff);
  }
}

void JournalStore::WipePageAreaForTest() {
  MutexLock lock(mu_);
  segments_.clear();
}

uint64_t JournalStore::applied_writes() const {
  MutexLock lock(mu_);
  return applied_writes_;
}

std::string JournalStore::DebugDump() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "journal: " << journal_.size() << " bytes, " << segments_.size()
      << " segments in page area\n";
  size_t pos = 0;
  int index = 0;
  while (pos < journal_.size()) {
    RecordView view;
    if (!ParseRecord(journal_, pos, &view)) {
      out << "  [" << index << "] TORN/CORRUPT tail: " << (journal_.size() - pos)
          << " bytes at offset " << pos << "\n";
      break;
    }
    out << "  [" << index << "] type=" << static_cast<int>(view.type)
        << " seq=" << view.seq << " key=" << view.key << " off=" << view.offset
        << " payload=" << view.payload_size << "\n";
    pos += view.total_bytes;
    ++index;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// JournaledSwapMapper
// ---------------------------------------------------------------------------

Status JournaledSwapMapper::Read(uint64_t key, SegOffset offset, size_t size,
                                 std::vector<std::byte>* out) {
  MutexLock lock(store_.mu_);
  auto seg = store_.segments_.find(key);
  if (seg == store_.segments_.end()) {
    return Status::kNotFound;
  }
  const size_t page = store_.page_size_;
  out->assign(size, std::byte{0});
  for (size_t done = 0; done < size; done += page) {
    auto it = seg->second.find(offset + done);
    if (it != seg->second.end()) {
      std::memcpy(out->data() + done, it->second.data(), std::min(page, size - done));
    }
  }
  return Status::kOk;
}

Status JournaledSwapMapper::JournalAndApply(RecordType type, uint64_t seq,
                                            uint64_t key, SegOffset offset,
                                            const std::byte* payload,
                                            size_t payload_size) {
  store_.mu_.AssertHeld();
  std::vector<std::byte> record = SerializeRecord(
      static_cast<uint8_t>(type), seq, key, offset, payload, payload_size);
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (type == RecordType::kWrite && injector != nullptr) {
    if (injector->Check(FaultSite::kCrashMapperBeforeWrite) != Status::kOk) {
      // Process dies before the intent reaches the log: nothing durable, no ack.
      crash_pending_.store(true, std::memory_order_release);
      return Status::kPortDead;
    }
    if (injector->Check(FaultSite::kCrashMapperMidWrite) != Status::kOk) {
      // Process dies mid-append: a torn prefix (header + part of the payload,
      // no commit marker) reaches the log.  Recover() must discard it.
      size_t torn = kHeaderBytes + payload_size / 2;
      store_.journal_.insert(store_.journal_.end(), record.begin(),
                             record.begin() + static_cast<ptrdiff_t>(torn));
      crash_pending_.store(true, std::memory_order_release);
      return Status::kPortDead;
    }
    if (payload_size > store_.page_size_ &&
        injector->Check(FaultSite::kCrashMapperMidBatch) != Status::kOk) {
      // Mid-append of a *multi-page* batch (the paging daemon's clustered
      // pushOut): a torn batch prefix reaches the log.  Recover() discards the
      // whole record, so a batch commits all-or-nothing — no page of the batch
      // is durable unless every page is.
      size_t torn = kHeaderBytes + payload_size / 2;
      store_.journal_.insert(store_.journal_.end(), record.begin(),
                             record.begin() + static_cast<ptrdiff_t>(torn));
      crash_pending_.store(true, std::memory_order_release);
      return Status::kPortDead;
    }
  }
  store_.journal_.insert(store_.journal_.end(), record.begin(), record.end());
  // Commit point passed: apply to the page area.
  switch (type) {
    case RecordType::kWrite: {
      auto& seg = store_.segments_[key];
      const size_t page = store_.page_size_;
      for (size_t done = 0; done < payload_size; done += page) {
        auto& bytes = seg[offset + done];
        bytes.assign(page, std::byte{0});
        std::memcpy(bytes.data(), payload + done, std::min(page, payload_size - done));
      }
      ++store_.applied_writes_;
      break;
    }
    case RecordType::kAlloc:
      store_.segments_[key];
      store_.next_key_ = std::max(store_.next_key_, key + 1);
      break;
    case RecordType::kFree:
      store_.segments_.erase(key);
      break;
  }
  if (seq != 0) {
    seen_seqs_.insert(seq);
  }
  return Status::kOk;
}

Status JournaledSwapMapper::Write(uint64_t key, SegOffset offset,
                                  const std::byte* data, size_t size) {
  return WriteSeq(key, offset, data, size, 0);
}

Status JournaledSwapMapper::WriteSeq(uint64_t key, SegOffset offset,
                                     const std::byte* data, size_t size,
                                     uint64_t seq) {
  MutexLock lock(store_.mu_);
  if (seq != 0 && seen_seqs_.contains(seq)) {
    // Re-issued request whose original committed before the crash ate the ack:
    // already durable, acknowledge without journaling again.
    ++duplicates_ignored_;
    return Status::kOk;
  }
  if (!store_.segments_.contains(key)) {
    return Status::kNotFound;
  }
  return JournalAndApply(RecordType::kWrite, seq, key, offset, data, size);
}

Result<uint64_t> JournaledSwapMapper::AllocateTemporary(size_t size_hint) {
  return AllocateTemporarySeq(size_hint, 0);
}

Result<uint64_t> JournaledSwapMapper::AllocateTemporarySeq(size_t size_hint,
                                                           uint64_t seq) {
  (void)size_hint;
  MutexLock lock(store_.mu_);
  if (seq != 0) {
    auto it = alloc_seq_keys_.find(seq);
    if (it != alloc_seq_keys_.end()) {
      // Re-issued allocation: hand back the key the committed original minted,
      // instead of leaking a second segment.
      ++duplicates_ignored_;
      return it->second;
    }
  }
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr && injector->Check(FaultSite::kSwapAlloc) != Status::kOk) {
    return Status::kNoSwap;
  }
  uint64_t key = store_.next_key_;
  Status s = JournalAndApply(RecordType::kAlloc, seq, key, 0, nullptr, 0);
  if (s != Status::kOk) {
    return s;
  }
  if (seq != 0) {
    alloc_seq_keys_[seq] = key;
  }
  return key;
}

Status JournaledSwapMapper::Free(uint64_t key) {
  MutexLock lock(store_.mu_);
  return JournalAndApply(RecordType::kFree, 0, key, 0, nullptr, 0);
}

JournaledSwapMapper::RecoveryReport JournaledSwapMapper::Recover() {
  MutexLock lock(store_.mu_);
  // The restarted process starts from nothing but the log: wipe every scrap of
  // in-memory state and rebuild.
  seen_seqs_.clear();
  alloc_seq_keys_.clear();
  crash_pending_.store(false, std::memory_order_release);
  RecoveryReport report;
  size_t pos = 0;
  while (pos < store_.journal_.size()) {
    RecordView view;
    if (!ParseRecord(store_.journal_, pos, &view)) {
      // Torn or corrupt: everything from here on is untrusted.  Truncate so
      // future appends land on a clean tail.
      report.bytes_truncated = store_.journal_.size() - pos;
      ++report.records_discarded;
      store_.journal_.resize(pos);
      break;
    }
    switch (static_cast<RecordType>(view.type)) {
      case RecordType::kWrite: {
        auto& seg = store_.segments_[view.key];
        const size_t page = store_.page_size_;
        for (size_t done = 0; done < view.payload_size; done += page) {
          auto& bytes = seg[view.offset + done];
          bytes.assign(page, std::byte{0});
          std::memcpy(bytes.data(), view.payload + done,
                      std::min(page, static_cast<size_t>(view.payload_size) - done));
        }
        ++store_.applied_writes_;
        break;
      }
      case RecordType::kAlloc:
        store_.segments_[view.key];
        store_.next_key_ = std::max(store_.next_key_, view.key + 1);
        if (view.seq != 0) {
          alloc_seq_keys_[view.seq] = view.key;
        }
        break;
      case RecordType::kFree:
        store_.segments_.erase(view.key);
        break;
    }
    if (view.seq != 0) {
      seen_seqs_.insert(view.seq);
    }
    ++report.records_replayed;
    pos += view.total_bytes;
  }
  return report;
}

}  // namespace gvm
