// The segment manager: the Nucleus interface between mappers and a GMI
// implementation (paper section 5.1.2).
//
// "The segment manager maps each segment used on the site to a GMI local-cache.
// Given a segment capability, the segment manager either finds the corresponding
// local-cache if it exists, or assigns one."  It translates GMI upcalls (pullIn /
// pushOut / getWriteAccess, Table 3) into IPC requests to the segment's mapper,
// allocates temporary local-caches (backed lazily by a default mapper's swap
// segments on the first pushOut), and implements the *segment caching* strategy of
// section 5.1.3: unreferenced caches are kept as long as there is room, which is
// what makes repeated execs of the same program fast.
//
// Crash recovery (DESIGN.md §11): every state-changing RPC carries a monotonic
// sequence number (Message::arg2) so a crash-safe mapper can deduplicate
// re-issued requests; RPCs are bounded by a deadline and death-linked to the
// mapper's port, so a mapper crash surfaces as kPortDead instead of a hang; and
// MapperRecovered() re-drives every cache routed to a recovered mapper so
// requeued dirty pages drain and degraded segments exit.
#ifndef GVM_SRC_NUCLEUS_SEGMENT_MANAGER_H_
#define GVM_SRC_NUCLEUS_SEGMENT_MANAGER_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "src/fault/fault_injector.h"
#include "src/gmi/memory_manager.h"
#include "src/nucleus/ipc.h"
#include "src/nucleus/mapper.h"
#include "src/sync/annotated_mutex.h"

namespace gvm {

class SegmentManager : public SegmentRegistry {
 public:
  struct Options {
    // Maximum number of unreferenced local caches kept alive (segment caching).
    size_t cache_capacity = 16;
    // Route mapper traffic through IPC messages and a served port (true) or call
    // the mapper server's dispatcher in-process (false).  Both exercise the same
    // wire protocol; the threaded mode additionally exercises real concurrency.
    bool use_ipc_transport = false;
    // Mapper RPC retry policy: a transient kBusError (failed transport or mapper
    // I/O error) or kTimeout (deadline expired; the request may or may not have
    // been applied — the sequence number makes re-issue safe) is retried up to
    // this many extra attempts before it is treated as permanent and propagated.
    uint64_t io_retry_limit = 3;
    // Deterministic exponential backoff between attempts: the k-th retry sleeps
    // retry_backoff_us << k microseconds.  0 disables sleeping (tests).
    uint64_t retry_backoff_us = 0;
    // Bound on one IPC-transport RPC round trip, in microseconds (0 = forever).
    // With the death link a crashed mapper fails callers immediately; the
    // deadline additionally covers a mapper that is alive but wedged.
    uint64_t rpc_deadline_us = 500'000;
  };

  struct Stats {
    uint64_t lookups = 0;
    uint64_t cache_hits = 0;        // segment-caching hits (section 5.1.3)
    uint64_t caches_created = 0;
    uint64_t caches_discarded = 0;  // evicted from the unreferenced pool
    uint64_t mapper_reads = 0;
    uint64_t mapper_writes = 0;
    uint64_t temp_segments = 0;     // swap segments allocated on first pushOut
    uint64_t io_retries = 0;            // transient RPC attempts retried
    uint64_t io_permanent_failures = 0; // transient errors that exhausted the retry budget
    uint64_t rpc_timeouts = 0;          // RPC attempts that hit the deadline
    uint64_t rpc_port_deaths = 0;       // RPCs failed fast because the mapper's port died
    uint64_t recoveries = 0;            // MapperRecovered() notifications processed
  };

  SegmentManager(MemoryManager& mm, Ipc& ipc) : SegmentManager(mm, ipc, Options{}) {}
  SegmentManager(MemoryManager& mm, Ipc& ipc, Options options);
  ~SegmentManager() override;

  // Register the default mapper (provides temporary/"swap" segments).  The
  // server's port becomes the default-mapper port.
  void BindDefaultMapper(MapperServer* server) GVM_EXCLUDES(mu_);
  // Register an additional mapper server so its port can be resolved.
  void RegisterMapper(MapperServer* server) GVM_EXCLUDES(mu_);

  // Optional fault injection on the mapper RPC sites (kMapperRead, kMapperWrite,
  // kMapperAllocTemp).  Null disables injection; the injector must outlive this
  // manager.  Injected faults go through the same retry policy as real ones.
  void BindFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  // Find or create the local cache for a segment capability.  Takes a reference;
  // pair with Release().  (The paper's rgnMap path.)
  Result<Cache*> AcquireCache(const Capability& segment) GVM_EXCLUDES(mu_);

  // Create a temporary local cache (the paper's rgnAllocate path): zero-filled,
  // acquires a swap segment from the default mapper on first pushOut.
  Result<Cache*> AcquireTemporaryCache(std::string name) GVM_EXCLUDES(mu_);

  // Drop a reference.  Unreferenced permanent caches enter the segment cache;
  // unreferenced temporary caches are destroyed (their contents are meaningless
  // once unreferenced).
  void Release(Cache* cache) GVM_EXCLUDES(mu_);

  // Take an additional reference on a cache returned by Acquire* earlier.
  void AddRef(Cache* cache) GVM_EXCLUDES(mu_);

  // ---- SegmentRegistry (GMI upcall, Table 3 segmentCreate) ----
  SegmentDriver* SegmentCreate(Cache& cache) override GVM_EXCLUDES(mu_);

  // A registered mapper server crashed, had its durable state recovered
  // (journal replayed), and was restarted on the same port.  Re-drives every
  // cache whose segment routes to that mapper — Sync() re-issues the requeued
  // dirty pages (same sequence numbers, so an applied-but-unacked write is
  // deduplicated) and a successful push clears degraded mode and wakes
  // sleepers — then reports the recovery to the memory manager.
  void MapperRecovered(MapperServer* server, uint64_t records_replayed,
                       uint64_t records_discarded) GVM_EXCLUDES(mu_);

  // Local-cache capability (section 5.1.2): lets remote mappers invoke cache
  // control operations through this manager.
  Result<Capability> LocalCacheCapability(Cache* cache) GVM_EXCLUDES(mu_);
  Result<Cache*> ResolveLocalCache(const Capability& cap) GVM_EXCLUDES(mu_);

  // Snapshot by value: RPC paths bump counters concurrently under mu_.
  Stats stats() const GVM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  size_t CachedSegmentCount() const GVM_EXCLUDES(mu_);  // unreferenced pool size
  MemoryManager& mm() { return mm_; }

 private:
  friend class SegmentManagerDriver;

  struct Entry {
    // Shared with the driver: a memory manager may keep a "dying" cache (and thus
    // its driver) alive for deferred-copy descendants after the entry is gone.
    std::shared_ptr<Capability> segment = std::make_shared<Capability>();
    Cache* cache = nullptr;
    std::unique_ptr<SegmentDriver> driver;
    int refs = 0;
    bool temporary = false;
    uint64_t local_key = 0;      // key of the local-cache capability
  };

  // Mapper RPC used by the drivers (marshals into the wire protocol).  All are
  // called with mu_ released: an RPC may block for a full deadline.
  [[nodiscard]] Status MapperRead(const Capability& segment, SegOffset offset, size_t size,
                    std::vector<std::byte>* out, Prot* max_prot = nullptr)
      GVM_EXCLUDES(mu_);
  [[nodiscard]] Status MapperWrite(const Capability& segment, SegOffset offset, const std::byte* data,
                     size_t size) GVM_EXCLUDES(mu_);
  [[nodiscard]] Status MapperWriteAccess(const Capability& segment, SegOffset offset, size_t size)
      GVM_EXCLUDES(mu_);
  Result<Capability> MapperAllocTemp(size_t size_hint) GVM_EXCLUDES(mu_);
  [[nodiscard]] Status MapperFree(const Capability& segment) GVM_EXCLUDES(mu_);
  Result<Message> MapperCall(PortId port, Message request) GVM_EXCLUDES(mu_);
  // One logical RPC under the retry policy: evaluates the injection site, issues
  // the call, retries transient kBusError/kTimeout with deterministic backoff
  // (re-using the request verbatim, sequence number included), fails fast on
  // kPortDead, and guarantees reply->status == kOk on success.
  Result<Message> RetryingMapperCall(FaultSite site, PortId port, const Message& request)
      GVM_EXCLUDES(mu_);

  // Capability snapshot/adoption for the drivers (the segment slot is shared
  // mutable state once push-outs run concurrently).
  Capability SnapshotSegment(const std::shared_ptr<Capability>& slot) const
      GVM_EXCLUDES(mu_);
  // First-pushOut race resolution: install `fresh` into the slot unless another
  // thread won; the loser's segment is freed back to the mapper.  Returns the
  // capability the slot ended up holding.
  Capability AdoptTempSegment(const std::shared_ptr<Capability>& slot,
                              const Capability& fresh) GVM_EXCLUDES(mu_);

  Entry* FindBySegment(const Capability& segment) GVM_REQUIRES(mu_);
  Entry* FindByCache(Cache* cache) GVM_REQUIRES(mu_);
  // Unlinks the entry from the tables and parks its driver in the graveyard,
  // returning the cache to destroy *after* mu_ is released (Cache::Destroy may
  // re-enter this manager through pushOut upcalls).
  Cache* DetachEntryLocked(Entry* entry) GVM_REQUIRES(mu_);

  MemoryManager& mm_;
  Ipc& ipc_;
  const Options options_;
  std::atomic<FaultInjector*> injector_{nullptr};
  // Monotonic sequence numbers stamped into Message::arg2, one per *logical*
  // state-changing RPC (retries re-use the number: that is what makes them
  // idempotent against a mapper that applied the request but lost the ack).
  std::atomic<uint64_t> next_rpc_seq_{1};

  // Rank kSegmentManager sits below every lock the manager can reach while
  // held: the MM manager lock (CacheCreate/Destroy), the mapper serve lock and
  // stores (in-process RPC), and Ipc (transport RPC).
  mutable Mutex mu_{Rank::kSegmentManager, "SegmentManager::mu_"};
  MapperServer* default_mapper_ GVM_GUARDED_BY(mu_) = nullptr;
  std::map<PortId, MapperServer*> mappers_ GVM_GUARDED_BY(mu_);
  std::list<Entry> entries_ GVM_GUARDED_BY(mu_);
  // Drivers of destroyed entries, kept alive for dying caches that still
  // reference them (see Entry::segment).
  std::vector<std::unique_ptr<SegmentDriver>> driver_graveyard_ GVM_GUARDED_BY(mu_);
  // Unreferenced entries in LRU order (front = oldest), for segment caching.
  std::list<Entry*> unreferenced_ GVM_GUARDED_BY(mu_);
  const PortId local_port_;  // port identifying this manager's capabilities
  uint64_t next_local_key_ GVM_GUARDED_BY(mu_) = 1;
  uint64_t temp_counter_ GVM_GUARDED_BY(mu_) = 0;
  Stats stats_ GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_SEGMENT_MANAGER_H_
