// The segment manager: the Nucleus interface between mappers and a GMI
// implementation (paper section 5.1.2).
//
// "The segment manager maps each segment used on the site to a GMI local-cache.
// Given a segment capability, the segment manager either finds the corresponding
// local-cache if it exists, or assigns one."  It translates GMI upcalls (pullIn /
// pushOut / getWriteAccess, Table 3) into IPC requests to the segment's mapper,
// allocates temporary local-caches (backed lazily by a default mapper's swap
// segments on the first pushOut), and implements the *segment caching* strategy of
// section 5.1.3: unreferenced caches are kept as long as there is room, which is
// what makes repeated execs of the same program fast.
#ifndef GVM_SRC_NUCLEUS_SEGMENT_MANAGER_H_
#define GVM_SRC_NUCLEUS_SEGMENT_MANAGER_H_

#include <list>
#include <map>
#include <memory>
#include <string>

#include "src/fault/fault_injector.h"
#include "src/gmi/memory_manager.h"
#include "src/nucleus/ipc.h"
#include "src/nucleus/mapper.h"

namespace gvm {

class SegmentManager : public SegmentRegistry {
 public:
  struct Options {
    // Maximum number of unreferenced local caches kept alive (segment caching).
    size_t cache_capacity = 16;
    // Route mapper traffic through IPC messages and a served port (true) or call
    // the mapper server's dispatcher in-process (false).  Both exercise the same
    // wire protocol; the threaded mode additionally exercises real concurrency.
    bool use_ipc_transport = false;
    // Mapper RPC retry policy: a transient kBusError (failed transport or mapper
    // I/O error) is retried up to this many extra attempts before it is treated
    // as permanent and propagated.  All mapper RPCs are idempotent, so retrying
    // a whole call is always safe.
    uint64_t io_retry_limit = 3;
    // Deterministic exponential backoff between attempts: the k-th retry sleeps
    // retry_backoff_us << k microseconds.  0 disables sleeping (tests).
    uint64_t retry_backoff_us = 0;
  };

  struct Stats {
    uint64_t lookups = 0;
    uint64_t cache_hits = 0;        // segment-caching hits (section 5.1.3)
    uint64_t caches_created = 0;
    uint64_t caches_discarded = 0;  // evicted from the unreferenced pool
    uint64_t mapper_reads = 0;
    uint64_t mapper_writes = 0;
    uint64_t temp_segments = 0;     // swap segments allocated on first pushOut
    uint64_t io_retries = 0;            // transient-kBusError RPC attempts retried
    uint64_t io_permanent_failures = 0; // kBusError RPCs that exhausted the retry budget
  };

  SegmentManager(MemoryManager& mm, Ipc& ipc) : SegmentManager(mm, ipc, Options{}) {}
  SegmentManager(MemoryManager& mm, Ipc& ipc, Options options);
  ~SegmentManager() override;

  // Register the default mapper (provides temporary/"swap" segments).  The
  // server's port becomes the default-mapper port.
  void BindDefaultMapper(MapperServer* server);
  // Register an additional mapper server so its port can be resolved.
  void RegisterMapper(MapperServer* server);

  // Optional fault injection on the mapper RPC sites (kMapperRead, kMapperWrite,
  // kMapperAllocTemp).  Null disables injection; the injector must outlive this
  // manager.  Injected faults go through the same retry policy as real ones.
  void BindFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // Find or create the local cache for a segment capability.  Takes a reference;
  // pair with Release().  (The paper's rgnMap path.)
  Result<Cache*> AcquireCache(const Capability& segment);

  // Create a temporary local cache (the paper's rgnAllocate path): zero-filled,
  // acquires a swap segment from the default mapper on first pushOut.
  Result<Cache*> AcquireTemporaryCache(std::string name);

  // Drop a reference.  Unreferenced permanent caches enter the segment cache;
  // unreferenced temporary caches are destroyed (their contents are meaningless
  // once unreferenced).
  void Release(Cache* cache);

  // Take an additional reference on a cache returned by Acquire* earlier.
  void AddRef(Cache* cache);

  // ---- SegmentRegistry (GMI upcall, Table 3 segmentCreate) ----
  SegmentDriver* SegmentCreate(Cache& cache) override;

  // Local-cache capability (section 5.1.2): lets remote mappers invoke cache
  // control operations through this manager.
  Result<Capability> LocalCacheCapability(Cache* cache);
  Result<Cache*> ResolveLocalCache(const Capability& cap);

  const Stats& stats() const { return stats_; }
  size_t CachedSegmentCount() const;  // unreferenced pool size
  MemoryManager& mm() { return mm_; }

 private:
  friend class SegmentManagerDriver;

  struct Entry {
    // Shared with the driver: a memory manager may keep a "dying" cache (and thus
    // its driver) alive for deferred-copy descendants after the entry is gone.
    std::shared_ptr<Capability> segment = std::make_shared<Capability>();
    Cache* cache = nullptr;
    std::unique_ptr<SegmentDriver> driver;
    int refs = 0;
    bool temporary = false;
    uint64_t local_key = 0;      // key of the local-cache capability
  };

  // Mapper RPC used by the drivers (marshals into the wire protocol).
  Status MapperRead(const Capability& segment, SegOffset offset, size_t size,
                    std::vector<std::byte>* out, Prot* max_prot = nullptr);
  Status MapperWrite(const Capability& segment, SegOffset offset, const std::byte* data,
                     size_t size);
  Status MapperWriteAccess(const Capability& segment, SegOffset offset, size_t size);
  Result<Capability> MapperAllocTemp(size_t size_hint);
  Result<Message> MapperCall(PortId port, Message request);
  // One logical RPC under the retry policy: evaluates the injection site, issues
  // the call, retries transient kBusError with deterministic backoff, and
  // guarantees reply->status == kOk on success.
  Result<Message> RetryingMapperCall(FaultSite site, PortId port, const Message& request);

  Entry* FindBySegment(const Capability& segment);
  Entry* FindByCache(Cache* cache);
  void TrimCachePool();
  void DestroyEntry(Entry* entry);

  MemoryManager& mm_;
  Ipc& ipc_;
  Options options_;
  FaultInjector* injector_ = nullptr;
  MapperServer* default_mapper_ = nullptr;
  std::map<PortId, MapperServer*> mappers_;
  std::list<Entry> entries_;
  // Drivers of destroyed entries, kept alive for dying caches that still
  // reference them (see Entry::segment).
  std::vector<std::unique_ptr<SegmentDriver>> driver_graveyard_;
  // Unreferenced entries in LRU order (front = oldest), for segment caching.
  std::list<Entry*> unreferenced_;
  PortId local_port_ = kInvalidPort;  // port identifying this manager's capabilities
  uint64_t next_local_key_ = 1;
  uint64_t temp_counter_ = 0;
  Stats stats_;
};

}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_SEGMENT_MANAGER_H_
