#include "src/nucleus/ipc.h"

namespace gvm {

PortId Ipc::PortCreate() {
  MutexLock lock(mu_);
  PortId id = next_port_++;
  ports_.emplace(id, std::make_unique<Port>());
  return id;
}

void Ipc::PortDestroy(PortId port) {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return;
  }
  it->second->dead = true;
  it->second->cv.NotifyAll();
  // The Port object is kept until the map entry is erased lazily; receivers
  // observe `dead` and fail out.  Erase now — waiters hold no iterator.
  // (Waiters reference the Port object; defer the erase until no one can be
  // blocked: mark dead and erase on a later create/destroy is complex, so we
  // simply keep dead ports in the table; they are tiny.)
}

Status Ipc::Send(PortId to, Message message) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    // The message is "lost on the wire": never enqueued, sender sees the error.
    Status injected = injector->Check(FaultSite::kIpcSend);
    if (injected != Status::kOk) {
      return injected;
    }
  }
  if (message.data.size() > Message::kMaxBytes) {
    // "To transfer large or sparse data, users should call the memory management
    // operations, and not IPC."
    return Status::kInvalidArgument;
  }
  MutexLock lock(mu_);
  auto it = ports_.find(to);
  if (it == ports_.end() || it->second->dead) {
    return Status::kNotFound;
  }
  stats_.bytes_transferred += message.data.size();
  ++stats_.sends;
  it->second->queue.push_back(std::move(message));
  it->second->cv.NotifyOne();
  return Status::kOk;
}

Result<Message> Ipc::Receive(PortId port) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    // Fails before touching the queue, so the message (if any) stays queued and
    // a later retry of the receive can still pick it up.
    Status injected = injector->Check(FaultSite::kIpcReceive);
    if (injected != Status::kOk) {
      return injected;
    }
  }
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return Status::kNotFound;
  }
  Port* p = it->second.get();
  while (p->queue.empty() && !p->dead) {
    p->cv.Wait(mu_);
  }
  if (p->queue.empty()) {
    return Status::kNotFound;  // port died
  }
  Message message = std::move(p->queue.front());
  p->queue.pop_front();
  ++stats_.receives;
  return message;
}

Result<Message> Ipc::TryReceive(PortId port) {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end() || it->second->queue.empty()) {
    return Status::kNotFound;
  }
  Message message = std::move(it->second->queue.front());
  it->second->queue.pop_front();
  ++stats_.receives;
  return message;
}

size_t Ipc::QueueDepth(PortId port) const {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  return it == ports_.end() ? 0 : it->second->queue.size();
}

}  // namespace gvm
