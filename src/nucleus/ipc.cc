#include "src/nucleus/ipc.h"

#include <algorithm>
#include <chrono>

namespace gvm {

PortId Ipc::PortCreate() {
  MutexLock lock(mu_);
  PortId id = next_port_++;
  ports_.emplace(id, std::make_unique<Port>());
  return id;
}

void Ipc::PortDestroy(PortId port) {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end() || it->second->dead) {
    return;
  }
  it->second->dead = true;
  it->second->cv.NotifyAll();
  // Fire the death links: every caller blocked on a reply from this port is
  // woken and observes kPortDead instead of running out its deadline.
  for (PortId linked : it->second->linked) {
    auto lit = ports_.find(linked);
    if (lit != ports_.end()) {
      lit->second->peer_dead = true;
      lit->second->cv.NotifyAll();
    }
  }
  it->second->linked.clear();
  // The Port object is kept in the table: receivers observe `dead` and fail
  // out, a dead port stays distinguishable from a never-created one, and
  // PortRevive can bring the same PortId back after a server restart.
}

void Ipc::PortRevive(PortId port) {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return;
  }
  Port* p = it->second.get();
  // Requests queued at the moment of death were addressed to the dead
  // incarnation; their senders have already been failed.  Drop them so the
  // revived server does not serve ghosts.
  p->queue.clear();
  p->dead = false;
  p->peer_dead = false;
  p->linked.clear();
}

Status Ipc::Send(PortId to, Message message) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    // The message is "lost on the wire": never enqueued, sender sees the error.
    Status injected = injector->Check(FaultSite::kIpcSend);
    if (injected != Status::kOk) {
      return injected;
    }
  }
  if (message.data.size() > Message::kMaxBytes) {
    // "To transfer large or sparse data, users should call the memory management
    // operations, and not IPC."
    return Status::kInvalidArgument;
  }
  MutexLock lock(mu_);
  auto it = ports_.find(to);
  if (it == ports_.end()) {
    return Status::kNotFound;
  }
  if (it->second->dead) {
    return Status::kPortDead;
  }
  stats_.bytes_transferred += message.data.size();
  ++stats_.sends;
  it->second->queue.push_back(std::move(message));
  it->second->cv.NotifyOne();
  return Status::kOk;
}

Result<Message> Ipc::Receive(PortId port) {
  return ReceiveInternal(port, 0, /*fail_on_peer_death=*/false);
}

Result<Message> Ipc::Receive(PortId port, uint64_t deadline_us) {
  return ReceiveInternal(port, deadline_us, /*fail_on_peer_death=*/false);
}

Result<Message> Ipc::ReceiveInternal(PortId port, uint64_t deadline_us,
                                     bool fail_on_peer_death) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr) {
    // Fails before touching the queue, so the message (if any) stays queued and
    // a later retry of the receive can still pick it up.
    Status injected = injector->Check(FaultSite::kIpcReceive);
    if (injected != Status::kOk) {
      return injected;
    }
  }
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return Status::kNotFound;
  }
  Port* p = it->second.get();
  bool timed_out = false;
  while (p->queue.empty() && !p->dead && !(fail_on_peer_death && p->peer_dead) &&
         !timed_out) {
    if (deadline_us == 0) {
      p->cv.Wait(mu_);
      continue;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    if (static_cast<uint64_t>(elapsed.count()) >= deadline_us) {
      timed_out = true;
      break;
    }
    p->cv.WaitFor(mu_, deadline_us - static_cast<uint64_t>(elapsed.count()));
  }
  // A queued message wins over any failure condition: a server that replied and
  // then died still delivered its reply.
  if (!p->queue.empty()) {
    Message message = std::move(p->queue.front());
    p->queue.pop_front();
    ++stats_.receives;
    return message;
  }
  if (p->dead || (fail_on_peer_death && p->peer_dead)) {
    return Status::kPortDead;
  }
  return Status::kTimeout;
}

Result<Message> Ipc::TryReceive(PortId port) {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  if (it == ports_.end() || it->second->queue.empty()) {
    return Status::kNotFound;
  }
  Message message = std::move(it->second->queue.front());
  it->second->queue.pop_front();
  ++stats_.receives;
  return message;
}

void Ipc::Unlink(PortId from, PortId reply_port) {
  MutexLock lock(mu_);
  auto it = ports_.find(from);
  if (it == ports_.end()) {
    return;
  }
  auto& linked = it->second->linked;
  linked.erase(std::remove(linked.begin(), linked.end(), reply_port), linked.end());
}

Result<Message> Ipc::Call(PortId to, Message request, uint64_t deadline_us) {
  PortId reply_port = PortCreate();
  {
    // Register the death link before sending: a crash between the send and our
    // receive must still poke us.
    MutexLock lock(mu_);
    auto it = ports_.find(to);
    if (it == ports_.end() || it->second->dead) {
      Status s = it == ports_.end() ? Status::kNotFound : Status::kPortDead;
      lock.unlock();
      PortDestroy(reply_port);
      return s;
    }
    it->second->linked.push_back(reply_port);
  }
  request.reply_to = Capability{reply_port, 0};
  Status sent = Send(to, std::move(request));
  if (sent != Status::kOk) {
    Unlink(to, reply_port);
    PortDestroy(reply_port);
    return sent;
  }
  Result<Message> reply =
      ReceiveInternal(reply_port, deadline_us, /*fail_on_peer_death=*/true);
  Unlink(to, reply_port);
  PortDestroy(reply_port);
  return reply;
}

size_t Ipc::QueueDepth(PortId port) const {
  MutexLock lock(mu_);
  auto it = ports_.find(port);
  return it == ports_.end() ? 0 : it->second->queue.size();
}

}  // namespace gvm
