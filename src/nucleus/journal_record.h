// The write-ahead-log record format shared by every WAL in the system.
//
// Extracted from JournaledSwapMapper (DESIGN.md §11) so other crash-safe
// subsystems — notably the DSM home directory (§12) — journal through the
// exact same checksummed, commit-marked encoding instead of growing a second,
// subtly different one.  A record is:
//
//   [0]   u64 record magic
//   [8]   u8  type (caller-defined namespace)
//   [9]   u64 sequence number (0 = unsequenced)
//   [17]  u64 key (segment / object id)
//   [25]  u64 offset
//   [33]  u64 payload size
//   [41]  u64 payload checksum (FNV-1a)
//   [49]  u64 header checksum (FNV-1a over bytes [0, 49))
//   [57]  payload bytes
//   [57+N] u64 commit marker (commit magic ^ seq)
//
// Parse() returns false on anything torn, truncated or corrupt; replaying a
// journal stops (and truncates) at the first such point.  The `type` byte is
// an opaque caller-defined namespace: the swap mapper and the DSM directory
// keep independent journals, so their type values never meet.
#ifndef GVM_SRC_NUCLEUS_JOURNAL_RECORD_H_
#define GVM_SRC_NUCLEUS_JOURNAL_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/hal/types.h"

namespace gvm {
namespace journal {

inline constexpr size_t kHeaderBytes = 57;
inline constexpr size_t kMarkerBytes = 8;
inline constexpr size_t kMinRecordBytes = kHeaderBytes + kMarkerBytes;
// Upper bound on a sane payload (at most one pushOut chunk / one batched
// range write).  Anything larger in a header is corruption, not data.
inline constexpr uint64_t kMaxPayloadBytes = 16ull * 1024 * 1024;

uint64_t Fnv1a(const std::byte* data, size_t size);
void PutU64(std::vector<std::byte>* out, uint64_t value);
uint64_t GetU64(const std::byte* p);

// A parsed-and-validated view of one record; points into the journal buffer.
struct RecordView {
  uint8_t type = 0;
  uint64_t seq = 0;
  uint64_t key = 0;
  uint64_t offset = 0;
  const std::byte* payload = nullptr;
  uint64_t payload_size = 0;
  size_t total_bytes = 0;
};

// Validates the record at `pos`; false on torn/corrupt/uncommitted data.
bool ParseRecord(const std::vector<std::byte>& journal_bytes, size_t pos,
                 RecordView* out);

// Serializes one commit-marked record.
std::vector<std::byte> SerializeRecord(uint8_t type, uint64_t seq, uint64_t key,
                                       uint64_t offset, const std::byte* payload,
                                       size_t payload_size);

}  // namespace journal
}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_JOURNAL_RECORD_H_
