#include "src/nucleus/journal_record.h"

namespace gvm {
namespace journal {

namespace {
constexpr uint64_t kRecordMagic = 0x4a524e4c30315647ULL;  // "GV10LNRJ"
constexpr uint64_t kCommitMagic = 0x434f4d4d49545f4bULL;  // "K_TIMMOC"
}  // namespace

uint64_t Fnv1a(const std::byte* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint64_t>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void PutU64(std::vector<std::byte>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::byte>((value >> (8 * i)) & 0xff));
  }
}

uint64_t GetU64(const std::byte* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

bool ParseRecord(const std::vector<std::byte>& journal_bytes, size_t pos,
                 RecordView* out) {
  if (journal_bytes.size() - pos < kMinRecordBytes) {
    return false;
  }
  const std::byte* p = journal_bytes.data() + pos;
  if (GetU64(p) != kRecordMagic) {
    return false;
  }
  if (Fnv1a(p, 49) != GetU64(p + 49)) {
    return false;
  }
  RecordView view;
  view.type = static_cast<uint8_t>(p[8]);
  view.seq = GetU64(p + 9);
  view.key = GetU64(p + 17);
  view.offset = GetU64(p + 25);
  view.payload_size = GetU64(p + 33);
  if (view.payload_size > kMaxPayloadBytes) {
    return false;
  }
  view.total_bytes = kHeaderBytes + view.payload_size + kMarkerBytes;
  if (journal_bytes.size() - pos < view.total_bytes) {
    return false;  // torn: payload or commit marker missing
  }
  view.payload = p + kHeaderBytes;
  if (Fnv1a(view.payload, view.payload_size) != GetU64(p + 41)) {
    return false;
  }
  if (GetU64(p + kHeaderBytes + view.payload_size) != (kCommitMagic ^ view.seq)) {
    return false;  // uncommitted
  }
  *out = view;
  return true;
}

std::vector<std::byte> SerializeRecord(uint8_t type, uint64_t seq, uint64_t key,
                                       uint64_t offset, const std::byte* payload,
                                       size_t payload_size) {
  std::vector<std::byte> record;
  record.reserve(kHeaderBytes + payload_size + kMarkerBytes);
  PutU64(&record, kRecordMagic);
  record.push_back(static_cast<std::byte>(type));
  PutU64(&record, seq);
  PutU64(&record, key);
  PutU64(&record, offset);
  PutU64(&record, payload_size);
  PutU64(&record, Fnv1a(payload, payload_size));
  PutU64(&record, Fnv1a(record.data(), record.size()));
  record.insert(record.end(), payload, payload + payload_size);
  PutU64(&record, kCommitMagic ^ seq);
  return record;
}

}  // namespace journal
}  // namespace gvm
