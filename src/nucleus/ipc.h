// Chorus Nucleus IPC: ports, messages, and sparse capabilities (section 5.1.1).
//
// "The Nucleus offers an IPC message communication mechanism ... Messages are not
// addressed directly to threads, but to intermediate entities called ports.  A
// port is an address to which messages can be sent, and a queue holding the
// messages received but not yet consumed."
//
// Messages are of limited size (64 KB in the paper's implementation — section
// 5.1.6); large or sparse transfers go through the memory-management interface
// instead.  Message payloads travel through the kernel's transit segment, using
// per-page deferred copy and move semantics (see TransitSegment in nucleus.h).
#ifndef GVM_SRC_NUCLEUS_IPC_H_
#define GVM_SRC_NUCLEUS_IPC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/sync/annotated_mutex.h"
#include "src/util/result.h"

namespace gvm {

using PortId = uint64_t;
inline constexpr PortId kInvalidPort = 0;

// Sparse capability (section 5.1.1, in the style of Amoeba's): the port of the
// server managing the object, plus an opaque key that the server uses to designate
// and protect it.
struct Capability {
  PortId port = kInvalidPort;
  uint64_t key = 0;

  bool valid() const { return port != kInvalidPort; }
  bool operator==(const Capability&) const = default;
};

// A message: a small header plus inline data (up to kMaxMessageBytes).
struct Message {
  static constexpr size_t kMaxBytes = 64 * 1024;  // the paper's 64 Kbyte limit

  uint64_t operation = 0;      // protocol-specific opcode
  Capability subject;          // capability the request concerns
  Capability reply_to;         // where to send the reply (reply protocols)
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
  int32_t status = 0;          // reply status
  std::vector<std::byte> data; // inline payload (<= kMaxBytes)
};

// The port registry and message queues.
class Ipc {
 public:
  struct Stats {
    uint64_t sends = 0;
    uint64_t receives = 0;
    uint64_t bytes_transferred = 0;
  };

  // Allocate a fresh port.
  PortId PortCreate();
  // Kill a port: subsequent sends fail with kPortDead, blocked receivers wake
  // with kPortDead, and every death-linked caller (see Call) is notified.  The
  // port stays in the table so a dead port is distinguishable from one that
  // never existed (kNotFound) — and so it can be revived.
  void PortDestroy(PortId port);
  // Bring a destroyed port back to life under the same PortId, so capabilities
  // naming it stay valid across a server crash+restart.  Messages queued at the
  // moment of death are discarded: they were addressed to the dead incarnation
  // and their senders have already been failed with kPortDead (or timed out).
  void PortRevive(PortId port);

  // Enqueue a message.  Fails with kNotFound if the port never existed,
  // kPortDead if it was destroyed, kInvalidArgument if the payload is oversized
  // ("Messages are of limited size").
  [[nodiscard]] Status Send(PortId to, Message message);

  // Dequeue the next message; blocks until one arrives or the port dies
  // (kPortDead).  The deadline overload additionally gives up with kTimeout
  // after `deadline_us` microseconds (0 = wait forever) so no kernel thread
  // can hang on a queue nobody will ever fill.
  Result<Message> Receive(PortId port);
  Result<Message> Receive(PortId port, uint64_t deadline_us);

  // Non-blocking variant.
  Result<Message> TryReceive(PortId port);

  // One bounded request/reply round trip: creates a private reply port,
  // death-links it to `to` (so the destruction of `to` wakes this caller
  // immediately with kPortDead instead of letting it run out its deadline),
  // sends, and waits for the reply at most `deadline_us` microseconds
  // (0 = forever).  A reply already queued when the peer dies is still
  // delivered — death only matters while the queue is empty.
  Result<Message> Call(PortId to, Message request, uint64_t deadline_us);

  // Number of queued messages (for tests).
  size_t QueueDepth(PortId port) const GVM_EXCLUDES(mu_);

  // Snapshot by value: senders and receivers bump these under mu_ concurrently,
  // so handing out a reference would be an unlocked read of guarded state.
  Stats stats() const GVM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }

  // Optional fault injection at the kIpcSend / kIpcReceive sites (a "lossy
  // transport").  Null disables injection; the injector must outlive this Ipc.
  // Atomic: tests bind an injector while a mapper server thread is mid-Receive.
  void BindFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  struct Port {
    std::deque<Message> queue;
    CondVar cv;
    bool dead = false;
    // A death-linked peer (the port a Call was addressed to) was destroyed
    // while this reply port waited.
    bool peer_dead = false;
    // Reply ports to poke (peer_dead + notify) when this port dies.
    std::vector<PortId> linked;
  };

  Result<Message> ReceiveInternal(PortId port, uint64_t deadline_us,
                                  bool fail_on_peer_death) GVM_EXCLUDES(mu_);
  void Unlink(PortId from, PortId reply_port) GVM_EXCLUDES(mu_);

  // kIpc ranks below kMmManager: IPC payload delivery (TransitSegment reads and
  // writes) calls into the memory manager, never the other way around.
  mutable Mutex mu_{Rank::kIpc, "Ipc::mu_"};
  PortId next_port_ GVM_GUARDED_BY(mu_) = 1;
  std::map<PortId, std::unique_ptr<Port>> ports_ GVM_GUARDED_BY(mu_);
  Stats stats_ GVM_GUARDED_BY(mu_);
  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_IPC_H_
