#include "src/nucleus/nucleus.h"

#include <cassert>
#include <cstring>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

Actor::Actor(Nucleus& nucleus, ActorId id, std::string name, Context* context)
    : nucleus_(nucleus), id_(id), name_(std::move(name)), context_(context) {}

Actor::~Actor() = default;

Result<Region*> Actor::RgnAllocate(Vaddr address, uint64_t size, Prot prot) {
  // "the segment manager creates a temporary local-cache, which it maps into the
  // actor using the regionCreate GMI operation."
  Result<Cache*> cache = nucleus_.segment_manager().AcquireTemporaryCache(
      name_ + ":anon@" + std::to_string(address));
  if (!cache.ok()) {
    return cache.status();
  }
  Result<Region*> region =
      nucleus_.mm().RegionCreate(*context_, address, size, prot, **cache, 0);
  if (!region.ok()) {
    nucleus_.segment_manager().Release(*cache);
    return region.status();
  }
  region_caches_[*region] = *cache;
  return region;
}

Result<Region*> Actor::RgnMap(Vaddr address, uint64_t size, Prot prot,
                              const Capability& segment, SegOffset offset) {
  // "the segment manager first finds (or creates) a corresponding GMI local-cache,
  // and then maps it, using the regionCreate GMI operation."
  Result<Cache*> cache = nucleus_.segment_manager().AcquireCache(segment);
  if (!cache.ok()) {
    return cache.status();
  }
  Result<Region*> region =
      nucleus_.mm().RegionCreate(*context_, address, size, prot, **cache, offset);
  if (!region.ok()) {
    nucleus_.segment_manager().Release(*cache);
    return region.status();
  }
  region_caches_[*region] = *cache;
  return region;
}

Result<Region*> Actor::RgnInit(Vaddr address, uint64_t size, Prot prot,
                               const Capability& segment, SegOffset offset,
                               CopyPolicy policy) {
  // "The segment manager creates a temporary local-cache, finds (or creates) the
  // cache corresponding to the source segment, invokes cache.copy to initialize
  // the new cache contents, and finally maps it, using regionCreate."
  Result<Cache*> source = nucleus_.segment_manager().AcquireCache(segment);
  if (!source.ok()) {
    return source.status();
  }
  Result<Cache*> fresh = nucleus_.segment_manager().AcquireTemporaryCache(
      name_ + ":init@" + std::to_string(address));
  if (!fresh.ok()) {
    nucleus_.segment_manager().Release(*source);
    return fresh.status();
  }
  Status copied = (*source)->CopyTo(**fresh, offset, 0, size, policy);
  // The copy retains the source data through the deferred-copy machinery; the
  // source cache reference itself can be dropped.
  nucleus_.segment_manager().Release(*source);
  if (copied != Status::kOk) {
    nucleus_.segment_manager().Release(*fresh);
    return copied;
  }
  Result<Region*> region =
      nucleus_.mm().RegionCreate(*context_, address, size, prot, **fresh, 0);
  if (!region.ok()) {
    nucleus_.segment_manager().Release(*fresh);
    return region.status();
  }
  region_caches_[*region] = *fresh;
  return region;
}

Result<Region*> Actor::RgnMapFromActor(Vaddr address, uint64_t size, Prot prot, Actor& source,
                                       Vaddr source_address) {
  // "find the source local-cache using the context.findRegion and region.status
  // GMI operations."
  Result<Region*> src_region = source.context_->FindRegion(source_address);
  if (!src_region.ok()) {
    return src_region.status();
  }
  RegionStatus status = (*src_region)->GetStatus();
  SegOffset offset = status.offset + (source_address - status.address);
  if (!IsAligned(offset, nucleus_.cpu().memory().page_size())) {
    return Status::kInvalidArgument;
  }
  Cache* cache = status.cache;
  nucleus_.segment_manager().AddRef(cache);
  Result<Region*> region =
      nucleus_.mm().RegionCreate(*context_, address, size, prot, *cache, offset);
  if (!region.ok()) {
    nucleus_.segment_manager().Release(cache);
    return region.status();
  }
  region_caches_[*region] = cache;
  return region;
}

Result<Region*> Actor::RgnInitFromActor(Vaddr address, uint64_t size, Prot prot, Actor& source,
                                        Vaddr source_address, CopyPolicy policy) {
  Result<Region*> src_region = source.context_->FindRegion(source_address);
  if (!src_region.ok()) {
    return src_region.status();
  }
  RegionStatus status = (*src_region)->GetStatus();
  SegOffset offset = status.offset + (source_address - status.address);
  Result<Cache*> fresh = nucleus_.segment_manager().AcquireTemporaryCache(
      name_ + ":initfa@" + std::to_string(address));
  if (!fresh.ok()) {
    return fresh.status();
  }
  Status copied = status.cache->CopyTo(**fresh, offset, 0, size, policy);
  if (copied != Status::kOk) {
    nucleus_.segment_manager().Release(*fresh);
    return copied;
  }
  Result<Region*> region =
      nucleus_.mm().RegionCreate(*context_, address, size, prot, **fresh, 0);
  if (!region.ok()) {
    nucleus_.segment_manager().Release(*fresh);
    return region.status();
  }
  region_caches_[*region] = *fresh;
  return region;
}

Status Actor::RgnFree(Region* region) {
  auto it = region_caches_.find(region);
  if (it == region_caches_.end()) {
    return Status::kNotFound;
  }
  Cache* cache = it->second;
  Status s = region->Destroy();
  if (s != Status::kOk) {
    return s;
  }
  region_caches_.erase(it);
  nucleus_.segment_manager().Release(cache);
  return Status::kOk;
}

Status Actor::RgnFreeAll() {
  while (!region_caches_.empty()) {
    GVM_RETURN_IF_ERROR(RgnFree(region_caches_.begin()->first));
  }
  return Status::kOk;
}

Status Actor::Read(Vaddr va, void* buffer, size_t size) {
  return nucleus_.cpu().Read(address_space(), va, buffer, size);
}

Status Actor::Write(Vaddr va, const void* buffer, size_t size) {
  return nucleus_.cpu().Write(address_space(), va, buffer, size);
}

Status Actor::Fetch(Vaddr va, void* buffer, size_t size) {
  return nucleus_.cpu().Fetch(address_space(), va, buffer, size);
}

// ---------------------------------------------------------------------------
// TransitSegment
// ---------------------------------------------------------------------------

TransitSegment::TransitSegment(MemoryManager& mm, size_t slot_count) : mm_(mm) {
  cache_ = *mm_.CacheCreate(nullptr, "kernel:transit");
  in_use_.resize(slot_count, false);
}

TransitSegment::~TransitSegment() { (void)cache_->Destroy(); }

Result<size_t> TransitSegment::AllocateSlot() {
  for (size_t i = 0; i < in_use_.size(); ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      return i;
    }
  }
  return Status::kBusy;  // all slots in transit
}

void TransitSegment::FreeSlot(size_t slot) {
  assert(slot < in_use_.size());
  in_use_[slot] = false;
}

size_t TransitSegment::FreeSlots() const {
  size_t n = 0;
  for (bool used : in_use_) {
    n += used ? 0 : 1;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Nucleus
// ---------------------------------------------------------------------------

Nucleus::Nucleus(MemoryManager& mm, Options options) : mm_(mm) {
  segment_manager_ = std::make_unique<SegmentManager>(mm_, ipc_, options.segment_manager);
  transit_ = std::make_unique<TransitSegment>(mm_, options.transit_slots);
}

Nucleus::~Nucleus() {
  while (!actors_.empty()) {
    (void)ActorDestroy(actors_.begin()->second.get());
  }
}

Result<Actor*> Nucleus::ActorCreate(std::string name) {
  Result<Context*> context = mm_.ContextCreate();
  if (!context.ok()) {
    return context.status();
  }
  ActorId id = next_actor_++;
  auto actor =
      std::unique_ptr<Actor>(new Actor(*this, id, std::move(name), *context));
  Actor* raw = actor.get();
  actors_.emplace(id, std::move(actor));
  return raw;
}

Status Nucleus::ActorDestroy(Actor* actor) {
  GVM_RETURN_IF_ERROR(actor->RgnFreeAll());
  GVM_RETURN_IF_ERROR(actor->context_->Destroy());
  actors_.erase(actor->id());
  return Status::kOk;
}

Status Nucleus::MsgSendFromRegion(Actor& sender, PortId to, uint64_t operation, Vaddr va,
                                  size_t size) {
  if (size > Message::kMaxBytes) {
    return Status::kInvalidArgument;  // large data goes through memory management
  }
  Result<Region*> region_result = sender.context_->FindRegion(va);
  if (!region_result.ok()) {
    return Status::kSegmentationFault;
  }
  RegionStatus region = (*region_result)->GetStatus();
  if (va + size > region.address + region.size) {
    return Status::kSegmentationFault;
  }
  SegOffset src_offset = region.offset + (va - region.address);

  Result<size_t> slot = transit_->AllocateSlot();
  if (!slot.ok()) {
    return slot.status();
  }
  const size_t page = mm_.cpu().memory().page_size();
  Status copied;
  if (IsAligned(src_offset, page) && IsAligned(size, page)) {
    // "An IPC send is implemented as a cache.copy between the user-space segment
    // and a transit slot, if the segment is large enough" — per-page deferred.
    copied = region.cache->CopyTo(transit_->cache(), src_offset,
                                  transit_->SlotOffset(*slot), size, CopyPolicy::kPerPage);
  } else {
    // "...otherwise as a bcopy."
    std::vector<std::byte> bounce(size);
    copied = region.cache->Read(src_offset, bounce.data(), size);
    if (copied == Status::kOk) {
      copied = transit_->cache().Write(transit_->SlotOffset(*slot), bounce.data(), size);
    }
  }
  if (copied != Status::kOk) {
    transit_->FreeSlot(*slot);
    return copied;
  }
  Message message;
  message.operation = operation;
  message.arg0 = *slot;  // transit slot carrying the payload
  message.arg1 = size;
  Status sent = ipc_.Send(to, std::move(message));
  if (sent != Status::kOk) {
    transit_->FreeSlot(*slot);
  }
  return sent;
}

Result<Message> Nucleus::MsgReceiveToRegion(Actor& receiver, PortId port, Vaddr va,
                                            size_t max_size) {
  Result<Message> message = ipc_.Receive(port);
  if (!message.ok()) {
    return message;
  }
  const size_t slot = static_cast<size_t>(message->arg0);
  const size_t size = static_cast<size_t>(message->arg1);
  if (size > max_size) {
    transit_->FreeSlot(slot);
    return Status::kInvalidArgument;
  }
  Result<Region*> region_result = receiver.context_->FindRegion(va);
  if (!region_result.ok()) {
    transit_->FreeSlot(slot);
    return Status::kSegmentationFault;
  }
  RegionStatus region = (*region_result)->GetStatus();
  SegOffset dst_offset = region.offset + (va - region.address);
  const size_t page = mm_.cpu().memory().page_size();
  Status moved;
  if (IsAligned(dst_offset, page) && IsAligned(size, page)) {
    // "A receive is implemented by cache.move" — real pages are retargeted from
    // the transit slot into the receiver, no copy.
    moved = transit_->cache().MoveTo(*region.cache, transit_->SlotOffset(slot), dst_offset,
                                     size);
  } else {
    std::vector<std::byte> bounce(size);
    moved = transit_->cache().Read(transit_->SlotOffset(slot), bounce.data(), size);
    if (moved == Status::kOk) {
      moved = region.cache->Write(dst_offset, bounce.data(), size);
    }
  }
  transit_->FreeSlot(slot);
  if (moved != Status::kOk) {
    return moved;
  }
  return message;
}

}  // namespace gvm
