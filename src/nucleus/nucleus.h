// The Chorus Nucleus memory-management layer (paper section 5.1): actors, the
// high-level region operations built from GMI primitives (rgnAllocate, rgnMap,
// rgnInit, rgnMapFromActor, rgnInitFromActor — section 5.1.4), and the IPC data
// path through the kernel transit segment (section 5.1.6).
#ifndef GVM_SRC_NUCLEUS_NUCLEUS_H_
#define GVM_SRC_NUCLEUS_NUCLEUS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/gmi/memory_manager.h"
#include "src/nucleus/ipc.h"
#include "src/nucleus/segment_manager.h"

namespace gvm {

class Nucleus;

using ActorId = uint32_t;

// An actor: an address space hosting threads (section 5.1.1).  In this user-space
// reproduction an actor owns a GMI context; "execution" is any code driving loads
// and stores through Nucleus::cpu() against the actor's address space.
class Actor {
 public:
  ~Actor();

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  Context& context() { return *context_; }
  AsId address_space() const { return context_->address_space(); }

  // ---- Nucleus region operations (section 5.1.4) ----

  // rgnAllocate: allocate a new memory region within the actor (anonymous,
  // zero-filled, swap-backed on demand).
  Result<Region*> RgnAllocate(Vaddr address, uint64_t size, Prot prot);

  // rgnMap: map an existing segment into the actor.
  Result<Region*> RgnMap(Vaddr address, uint64_t size, Prot prot, const Capability& segment,
                         SegOffset offset);

  // rgnInit: create a new region initialized as a (deferred) copy of an existing
  // segment.
  Result<Region*> RgnInit(Vaddr address, uint64_t size, Prot prot, const Capability& segment,
                          SegOffset offset, CopyPolicy policy = CopyPolicy::kAuto);

  // rgnMapFromActor: map the segment underlying a region of another actor
  // (sharing; Unix fork uses this for the text segment).
  Result<Region*> RgnMapFromActor(Vaddr address, uint64_t size, Prot prot, Actor& source,
                                  Vaddr source_address);

  // rgnInitFromActor: create a region as a (deferred) copy of another actor's
  // memory (Unix fork uses this for data and stack).
  Result<Region*> RgnInitFromActor(Vaddr address, uint64_t size, Prot prot, Actor& source,
                                   Vaddr source_address,
                                   CopyPolicy policy = CopyPolicy::kAuto);

  // Destroy a region and release its cache reference.
  [[nodiscard]] Status RgnFree(Region* region);

  // Destroy every region (exec teardown).
  [[nodiscard]] Status RgnFreeAll();

  // Convenience accessors driving the simulated CPU against this actor.
  [[nodiscard]] Status Read(Vaddr va, void* buffer, size_t size);
  [[nodiscard]] Status Write(Vaddr va, const void* buffer, size_t size);
  [[nodiscard]] Status Fetch(Vaddr va, void* buffer, size_t size);

 private:
  friend class Nucleus;

  Actor(Nucleus& nucleus, ActorId id, std::string name, Context* context);

  Nucleus& nucleus_;
  ActorId id_;
  std::string name_;
  Context* context_;
  // Region -> cache binding, so freeing a region releases the right reference.
  std::map<Region*, Cache*> region_caches_;
};

// The kernel transit segment for IPC payloads (section 5.1.6): a single
// fixed-sized segment made of 64 KB slots.  "An IPC send is implemented as a
// cache.copy between the user-space segment and a transit slot ... A receive is
// implemented by cache.move."
class TransitSegment {
 public:
  static constexpr size_t kSlotBytes = Message::kMaxBytes;

  TransitSegment(MemoryManager& mm, size_t slot_count);
  ~TransitSegment();

  Result<size_t> AllocateSlot();
  void FreeSlot(size_t slot);

  Cache& cache() { return *cache_; }
  SegOffset SlotOffset(size_t slot) const { return slot * kSlotBytes; }
  size_t FreeSlots() const;

 private:
  MemoryManager& mm_;
  Cache* cache_;
  std::vector<bool> in_use_;
};

class Nucleus {
 public:
  struct Options {
    size_t transit_slots = 8;
    SegmentManager::Options segment_manager;
  };

  explicit Nucleus(MemoryManager& mm) : Nucleus(mm, Options{}) {}
  Nucleus(MemoryManager& mm, Options options);
  ~Nucleus();

  // ---- Actors ----
  Result<Actor*> ActorCreate(std::string name);
  [[nodiscard]] Status ActorDestroy(Actor* actor);
  size_t ActorCount() const { return actors_.size(); }

  // ---- IPC with memory-managed payloads (section 5.1.6) ----
  // Send `size` bytes starting at `va` in `sender` to a port.  Data travels
  // through a transit slot: deferred per-page copy when page-aligned and large,
  // plain copy ("bcopy") otherwise — exactly the paper's strategy.
  [[nodiscard]] Status MsgSendFromRegion(Actor& sender, PortId to, uint64_t operation, Vaddr va,
                           size_t size);
  // Receive into `receiver` at `va`; uses cache.move out of the transit slot.
  Result<Message> MsgReceiveToRegion(Actor& receiver, PortId port, Vaddr va,
                                     size_t max_size);

  // Plain small-message IPC.
  [[nodiscard]] Status MsgSend(PortId to, Message message) { return ipc_.Send(to, std::move(message)); }
  Result<Message> MsgReceive(PortId port) { return ipc_.Receive(port); }

  Ipc& ipc() { return ipc_; }
  SegmentManager& segment_manager() { return *segment_manager_; }
  MemoryManager& mm() { return mm_; }
  Cpu& cpu() { return mm_.cpu(); }
  TransitSegment& transit() { return *transit_; }

  // Default mapper management (the Nucleus knows some mappers as defaults).
  void BindDefaultMapper(MapperServer* server) { segment_manager_->BindDefaultMapper(server); }
  void RegisterMapper(MapperServer* server) { segment_manager_->RegisterMapper(server); }

 private:
  MemoryManager& mm_;
  Ipc ipc_;
  std::unique_ptr<SegmentManager> segment_manager_;
  std::unique_ptr<TransitSegment> transit_;
  ActorId next_actor_ = 1;
  std::map<ActorId, std::unique_ptr<Actor>> actors_;
};

}  // namespace gvm

#endif  // GVM_SRC_NUCLEUS_NUCLEUS_H_
